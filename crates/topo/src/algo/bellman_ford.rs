//! Bellman-Ford single-source shortest paths.
//!
//! Used as an independent oracle for property-testing Dijkstra (both must
//! agree on distances for non-negative weights), and available to callers
//! that prefer the simpler relaxation structure.

use crate::error::TopoError;
use crate::ids::NodeId;
use crate::link::Link;
use crate::Result;
use crate::Topology;

/// Distances from `source` under `weight`, `f64::INFINITY` if unreachable.
///
/// Unlike Dijkstra this runs `O(V * E)` but tolerates any non-negative
/// weight function shape without a priority queue, making it a good
/// cross-check implementation.
pub fn bellman_ford(
    topo: &Topology,
    source: NodeId,
    weight: impl Fn(&Link) -> f64,
) -> Result<Vec<f64>> {
    topo.node(source)?;
    let n = topo.node_count();
    let mut dist = vec![f64::INFINITY; n];
    dist[source.index()] = 0.0;

    // Relax all (undirected) edges up to V-1 times; stop early when stable.
    for _ in 0..n.saturating_sub(1) {
        let mut changed = false;
        for link in topo.links() {
            let w = weight(link);
            if w.is_infinite() {
                continue;
            }
            if w.is_nan() || w < 0.0 {
                return Err(TopoError::BadWeight {
                    link: link.id,
                    weight: w,
                });
            }
            let (ai, bi) = (link.a.index(), link.b.index());
            if dist[ai] + w < dist[bi] {
                dist[bi] = dist[ai] + w;
                changed = true;
            }
            if dist[bi] + w < dist[ai] {
                dist[ai] = dist[bi] + w;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{hop_weight, length_weight, shortest_path_tree};
    use crate::builders;

    #[test]
    fn agrees_with_dijkstra_on_nsfnet() {
        let t = builders::nsfnet();
        let bf = bellman_ford(&t, NodeId(0), length_weight).unwrap();
        let dj = shortest_path_tree(&t, NodeId(0), length_weight).unwrap();
        for (i, (a, b)) in bf.iter().zip(dj.dist.iter()).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "distance mismatch at node {i}: bf={a} dijkstra={b}"
            );
        }
    }

    #[test]
    fn unreachable_stays_infinite() {
        let mut t = crate::Topology::new();
        let a = t.add_node(crate::NodeKind::Server, "a");
        let _b = t.add_node(crate::NodeKind::Server, "b"); // isolated
        let dist = bellman_ford(&t, a, hop_weight).unwrap();
        assert_eq!(dist[0], 0.0);
        assert!(dist[1].is_infinite());
    }

    #[test]
    fn rejects_negative_weights() {
        let t = builders::linear(3, 1.0, 10.0);
        assert!(bellman_ford(&t, NodeId(0), |_| -2.0).is_err());
    }

    #[test]
    fn source_distance_is_zero() {
        let t = builders::ring(5, 2.0, 10.0);
        let dist = bellman_ford(&t, NodeId(3), hop_weight).unwrap();
        assert_eq!(dist[3], 0.0);
    }
}
