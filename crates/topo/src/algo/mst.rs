//! Minimum spanning trees: Kruskal and Prim.
//!
//! Both operate under an arbitrary non-negative link weight function, skip
//! infinite-weight links, and break ties by ascending link id so results are
//! deterministic. Kruskal is the primary implementation; Prim exists as an
//! independent cross-check used by the property tests (both must find trees
//! of identical total weight).

use crate::algo::unionfind::UnionFind;
use crate::error::TopoError;
use crate::ids::LinkId;
use crate::link::Link;
use crate::Result;
use crate::Topology;

/// A spanning tree (or forest) returned by the MST algorithms.
#[derive(Debug, Clone, PartialEq)]
pub struct MstResult {
    /// Chosen tree links, ascending by id.
    pub links: Vec<LinkId>,
    /// Sum of weights of the chosen links.
    pub total_weight: f64,
    /// Number of connected components spanned (1 for a connected graph).
    pub components: usize,
}

impl MstResult {
    /// Whether the result spans a single connected component.
    pub fn is_spanning_tree(&self) -> bool {
        self.components == 1
    }
}

/// Kruskal's algorithm over the whole topology.
///
/// Returns a minimum spanning forest when the graph (restricted to usable,
/// finite-weight links) is disconnected.
pub fn kruskal_mst(topo: &Topology, weight: impl Fn(&Link) -> f64) -> Result<MstResult> {
    let mut edges: Vec<(f64, LinkId)> = Vec::with_capacity(topo.link_count());
    for link in topo.links() {
        let w = weight(link);
        if w.is_infinite() {
            continue;
        }
        if w.is_nan() || w < 0.0 {
            return Err(TopoError::BadWeight {
                link: link.id,
                weight: w,
            });
        }
        edges.push((w, link.id));
    }
    // Sort by (weight, id) for deterministic output.
    edges.sort_by(|(wa, la), (wb, lb)| {
        wa.partial_cmp(wb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(la.cmp(lb))
    });

    let mut uf = UnionFind::new(topo.node_count());
    let mut links = Vec::new();
    let mut total = 0.0;
    for (w, id) in edges {
        let l = topo.link(id)?;
        if uf.union(l.a.index(), l.b.index()) {
            links.push(id);
            total += w;
            if uf.components() == 1 {
                break;
            }
        }
    }
    links.sort();
    Ok(MstResult {
        links,
        total_weight: total,
        components: uf.components(),
    })
}

/// Prim's algorithm, growing from node 0 then restarting per component.
///
/// Produces a forest of identical total weight to [`kruskal_mst`] (the
/// individual edge choice may differ when weights tie).
pub fn prim_mst(topo: &Topology, weight: impl Fn(&Link) -> f64) -> Result<MstResult> {
    use std::cmp::Ordering;
    use std::collections::BinaryHeap;

    #[derive(PartialEq)]
    struct E {
        w: f64,
        link: LinkId,
        to: usize,
    }
    impl Eq for E {}
    impl Ord for E {
        fn cmp(&self, other: &Self) -> Ordering {
            other
                .w
                .partial_cmp(&self.w)
                .unwrap_or(Ordering::Equal)
                .then(other.link.cmp(&self.link))
        }
    }
    impl PartialOrd for E {
        fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
            Some(self.cmp(other))
        }
    }

    let n = topo.node_count();
    let mut in_tree = vec![false; n];
    let mut links = Vec::new();
    let mut total = 0.0;
    let mut components = 0usize;

    for start in 0..n {
        if in_tree[start] {
            continue;
        }
        components += 1;
        in_tree[start] = true;
        let mut heap = BinaryHeap::new();
        let push_edges = |heap: &mut BinaryHeap<E>, from: usize| -> Result<()> {
            for &(nbr, link_id) in topo.neighbors(crate::NodeId(from as u32))? {
                let l = topo.link(link_id)?;
                let w = weight(l);
                if w.is_infinite() {
                    continue;
                }
                if w.is_nan() || w < 0.0 {
                    return Err(TopoError::BadWeight {
                        link: link_id,
                        weight: w,
                    });
                }
                heap.push(E {
                    w,
                    link: link_id,
                    to: nbr.index(),
                });
            }
            Ok(())
        };
        push_edges(&mut heap, start)?;
        while let Some(E { w, link, to }) = heap.pop() {
            if in_tree[to] {
                continue;
            }
            in_tree[to] = true;
            links.push(link);
            total += w;
            push_edges(&mut heap, to)?;
        }
    }
    links.sort();
    Ok(MstResult {
        links,
        total_weight: total,
        components,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::length_weight;
    use crate::builders;
    use crate::node::NodeKind;
    use crate::NodeId;

    #[test]
    fn mst_of_triangle_drops_heaviest_edge() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::IpRouter, "a");
        let b = t.add_node(NodeKind::IpRouter, "b");
        let c = t.add_node(NodeKind::IpRouter, "c");
        t.add_link(a, b, 1.0, 10.0).unwrap();
        t.add_link(b, c, 2.0, 10.0).unwrap();
        let heavy = t.add_link(c, a, 10.0, 10.0).unwrap();
        let mst = kruskal_mst(&t, length_weight).unwrap();
        assert_eq!(mst.links.len(), 2);
        assert!(!mst.links.contains(&heavy));
        assert!((mst.total_weight - 3.0).abs() < 1e-9);
        assert!(mst.is_spanning_tree());
    }

    #[test]
    fn prim_and_kruskal_agree_on_weight() {
        for seed in 0..5 {
            let t = builders::random_connected(30, 0.15, seed, 100.0);
            let k = kruskal_mst(&t, length_weight).unwrap();
            let p = prim_mst(&t, length_weight).unwrap();
            assert!(
                (k.total_weight - p.total_weight).abs() < 1e-6,
                "seed {seed}: kruskal={} prim={}",
                k.total_weight,
                p.total_weight
            );
            assert_eq!(k.links.len(), p.links.len());
        }
    }

    #[test]
    fn spanning_tree_has_n_minus_1_edges() {
        let t = builders::nsfnet();
        let mst = kruskal_mst(&t, length_weight).unwrap();
        assert_eq!(mst.links.len(), t.node_count() - 1);
        assert!(mst.is_spanning_tree());
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::Server, "b");
        let _c = t.add_node(NodeKind::Server, "c"); // isolated
        t.add_link(a, b, 1.0, 10.0).unwrap();
        let mst = kruskal_mst(&t, length_weight).unwrap();
        assert_eq!(mst.components, 2);
        assert!(!mst.is_spanning_tree());
        let prim = prim_mst(&t, length_weight).unwrap();
        assert_eq!(prim.components, 2);
    }

    #[test]
    fn infinite_weight_links_are_excluded() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::Server, "b");
        let l = t.add_link(a, b, 1.0, 10.0).unwrap();
        let mst = kruskal_mst(&t, |_| f64::INFINITY).unwrap();
        assert!(mst.links.is_empty());
        assert!(!mst.links.contains(&l));
        assert_eq!(mst.components, 2);
    }

    #[test]
    fn negative_weights_error() {
        let t = builders::linear(3, 1.0, 10.0);
        assert!(kruskal_mst(&t, |_| -1.0).is_err());
        assert!(prim_mst(&t, |_| -1.0).is_err());
    }

    #[test]
    fn mst_links_form_acyclic_connected_subgraph() {
        let t = builders::random_connected(40, 0.2, 11, 100.0);
        let mst = kruskal_mst(&t, length_weight).unwrap();
        let mut uf = crate::algo::UnionFind::new(t.node_count());
        for l in &mst.links {
            let link = t.link(*l).unwrap();
            assert!(
                uf.union(link.a.index(), link.b.index()),
                "cycle detected in MST at {l}"
            );
        }
        assert_eq!(uf.components(), 1);
        // Touch NodeId import to confirm 0 is in the span.
        assert!(uf.connected(NodeId(0).index(), t.node_count() - 1));
    }
}
