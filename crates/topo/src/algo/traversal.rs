//! Breadth-first traversal and connectivity queries.

use crate::ids::{LinkId, NodeId};
use crate::Result;
use crate::Topology;
use std::collections::VecDeque;

/// Nodes reachable from `start` in BFS order (including `start`).
pub fn bfs_order(topo: &Topology, start: NodeId) -> Result<Vec<NodeId>> {
    topo.node(start)?;
    let mut visited = vec![false; topo.node_count()];
    let mut order = Vec::new();
    let mut q = VecDeque::from([start]);
    visited[start.index()] = true;
    while let Some(n) = q.pop_front() {
        order.push(n);
        for &(nbr, _) in topo.neighbors(n)? {
            if !visited[nbr.index()] {
                visited[nbr.index()] = true;
                q.push_back(nbr);
            }
        }
    }
    Ok(order)
}

/// Partition all nodes into connected components (each sorted ascending,
/// components ordered by their smallest member).
pub fn connected_components(topo: &Topology) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; topo.node_count()];
    let mut comps = Vec::new();
    for n in topo.node_ids() {
        if seen[n.index()] {
            continue;
        }
        let comp = bfs_order(topo, n).expect("node id from iterator is valid");
        for c in &comp {
            seen[c.index()] = true;
        }
        let mut comp = comp;
        comp.sort();
        comps.push(comp);
    }
    comps
}

/// Whether the topology is a single connected component (vacuously true for
/// the empty topology).
pub fn is_connected(topo: &Topology) -> bool {
    connected_components(topo).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::node::NodeKind;

    #[test]
    fn bfs_covers_connected_graph() {
        let t = builders::ring(6, 1.0, 10.0);
        let order = bfs_order(&t, NodeId(0)).unwrap();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn components_split_islands() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::Server, "b");
        let c = t.add_node(NodeKind::Server, "c");
        let d = t.add_node(NodeKind::Server, "d");
        t.add_link(a, b, 1.0, 1.0).unwrap();
        t.add_link(c, d, 1.0, 1.0).unwrap();
        let comps = connected_components(&t);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![a, b]);
        assert_eq!(comps[1], vec![c, d]);
        assert!(!is_connected(&t));
    }

    #[test]
    fn empty_topology_is_connected() {
        assert!(is_connected(&Topology::new()));
    }

    #[test]
    fn builders_produce_connected_graphs() {
        assert!(is_connected(&builders::nsfnet()));
        assert!(is_connected(&builders::linear(5, 1.0, 10.0)));
        assert!(is_connected(&builders::star(8, 1.0, 10.0)));
        assert!(is_connected(&builders::random_connected(30, 0.1, 3, 10.0)));
    }
}

/// Bridges of the topology: links whose removal disconnects their
/// component, ascending. Parallel links between the same node pair are
/// never bridges (the classic Tarjan low-link criterion, tracked per link
/// id so multigraphs are handled correctly).
///
/// Fault-injection uses this to distinguish *survivable* faults (a detour
/// exists, rescheduling policies can compete) from bridge cuts that
/// disconnect service under any policy.
pub fn bridges(topo: &Topology) -> Vec<LinkId> {
    let n = topo.node_count();
    let mut disc = vec![0u32; n];
    let mut low = vec![0u32; n];
    let mut visited = vec![false; n];
    let mut timer = 1u32;
    let mut out = Vec::new();
    // Iterative DFS: (node, entering link, neighbor cursor).
    let mut stack: Vec<(NodeId, Option<LinkId>, usize)> = Vec::new();
    for start in topo.node_ids() {
        if visited[start.index()] {
            continue;
        }
        visited[start.index()] = true;
        disc[start.index()] = timer;
        low[start.index()] = timer;
        timer += 1;
        stack.push((start, None, 0));
        while let Some(&mut (node, entered_via, ref mut cursor)) = stack.last_mut() {
            let neighbors = topo.neighbors(node).expect("node id from iterator");
            if *cursor < neighbors.len() {
                let (nbr, link) = neighbors[*cursor];
                *cursor += 1;
                if Some(link) == entered_via {
                    // Skip only the exact entering link: a parallel link
                    // between the same pair is a legitimate back edge.
                    continue;
                }
                if visited[nbr.index()] {
                    low[node.index()] = low[node.index()].min(disc[nbr.index()]);
                } else {
                    visited[nbr.index()] = true;
                    disc[nbr.index()] = timer;
                    low[nbr.index()] = timer;
                    timer += 1;
                    stack.push((nbr, Some(link), 0));
                }
            } else {
                stack.pop();
                if let Some(&mut (parent, _, _)) = stack.last_mut() {
                    low[parent.index()] = low[parent.index()].min(low[node.index()]);
                    if low[node.index()] > disc[parent.index()] {
                        out.push(entered_via.expect("non-root has an entering link"));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod bridge_tests {
    use super::*;
    use crate::builders;
    use crate::node::NodeKind;

    #[test]
    fn ring_has_no_bridges_line_is_all_bridges() {
        let ring = builders::ring(6, 1.0, 100.0);
        assert!(bridges(&ring).is_empty());
        let line = builders::linear(5, 1.0, 100.0);
        assert_eq!(bridges(&line).len(), line.link_count());
    }

    #[test]
    fn parallel_links_are_not_bridges() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::IpRouter, "a");
        let b = t.add_node(NodeKind::IpRouter, "b");
        let c = t.add_node(NodeKind::IpRouter, "c");
        t.add_link(a, b, 1.0, 100.0).unwrap();
        t.add_link(a, b, 1.0, 100.0).unwrap(); // parallel pair: no bridge
        let bc = t.add_link(b, c, 1.0, 100.0).unwrap(); // lone spur: bridge
        assert_eq!(bridges(&t), vec![bc]);
    }

    #[test]
    fn bridges_match_brute_force_on_random_graphs() {
        for seed in 0..5 {
            let t = builders::random_connected(18, 0.12, seed, 100.0);
            let fast = bridges(&t);
            for l in 0..t.link_count() as u32 {
                let id = crate::ids::LinkId(l);
                // Brute force: BFS avoiding `id`; disconnection <=> bridge.
                let link = t.link(id).unwrap();
                let mut seen = vec![false; t.node_count()];
                let mut q = vec![link.a];
                seen[link.a.index()] = true;
                while let Some(n) = q.pop() {
                    for &(nbr, via) in t.neighbors(n).unwrap() {
                        if via != id && !seen[nbr.index()] {
                            seen[nbr.index()] = true;
                            q.push(nbr);
                        }
                    }
                }
                let disconnects = !seen[link.b.index()];
                assert_eq!(
                    fast.contains(&id),
                    disconnects,
                    "seed {seed} link {id}: tarjan disagrees with brute force"
                );
            }
        }
    }

    #[test]
    fn metro_bridges_are_the_single_homed_spurs() {
        let t = builders::metro(&builders::MetroParams::default());
        let b = bridges(&t);
        // The WDM ring (with chords) is 2-edge-connected; every bridge must
        // touch a server or a single-homed router.
        for l in &b {
            let link = t.link(*l).unwrap();
            let ka = t.node(link.a).unwrap().kind;
            let kb = t.node(link.b).unwrap().kind;
            assert!(
                ka != NodeKind::Roadm || kb != NodeKind::Roadm,
                "ring span {l} flagged as a bridge"
            );
        }
    }
}
