//! Breadth-first traversal and connectivity queries.

use crate::ids::NodeId;
use crate::Result;
use crate::Topology;
use std::collections::VecDeque;

/// Nodes reachable from `start` in BFS order (including `start`).
pub fn bfs_order(topo: &Topology, start: NodeId) -> Result<Vec<NodeId>> {
    topo.node(start)?;
    let mut visited = vec![false; topo.node_count()];
    let mut order = Vec::new();
    let mut q = VecDeque::from([start]);
    visited[start.index()] = true;
    while let Some(n) = q.pop_front() {
        order.push(n);
        for &(nbr, _) in topo.neighbors(n)? {
            if !visited[nbr.index()] {
                visited[nbr.index()] = true;
                q.push_back(nbr);
            }
        }
    }
    Ok(order)
}

/// Partition all nodes into connected components (each sorted ascending,
/// components ordered by their smallest member).
pub fn connected_components(topo: &Topology) -> Vec<Vec<NodeId>> {
    let mut seen = vec![false; topo.node_count()];
    let mut comps = Vec::new();
    for n in topo.node_ids() {
        if seen[n.index()] {
            continue;
        }
        let comp = bfs_order(topo, n).expect("node id from iterator is valid");
        for c in &comp {
            seen[c.index()] = true;
        }
        let mut comp = comp;
        comp.sort();
        comps.push(comp);
    }
    comps
}

/// Whether the topology is a single connected component (vacuously true for
/// the empty topology).
pub fn is_connected(topo: &Topology) -> bool {
    connected_components(topo).len() <= 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;
    use crate::node::NodeKind;

    #[test]
    fn bfs_covers_connected_graph() {
        let t = builders::ring(6, 1.0, 10.0);
        let order = bfs_order(&t, NodeId(0)).unwrap();
        assert_eq!(order.len(), 6);
        assert_eq!(order[0], NodeId(0));
    }

    #[test]
    fn components_split_islands() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::Server, "b");
        let c = t.add_node(NodeKind::Server, "c");
        let d = t.add_node(NodeKind::Server, "d");
        t.add_link(a, b, 1.0, 1.0).unwrap();
        t.add_link(c, d, 1.0, 1.0).unwrap();
        let comps = connected_components(&t);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![a, b]);
        assert_eq!(comps[1], vec![c, d]);
        assert!(!is_connected(&t));
    }

    #[test]
    fn empty_topology_is_connected() {
        assert!(is_connected(&Topology::new()));
    }

    #[test]
    fn builders_produce_connected_graphs() {
        assert!(is_connected(&builders::nsfnet()));
        assert!(is_connected(&builders::linear(5, 1.0, 10.0)));
        assert!(is_connected(&builders::star(8, 1.0, 10.0)));
        assert!(is_connected(&builders::random_connected(30, 0.1, 3, 10.0)));
    }
}
