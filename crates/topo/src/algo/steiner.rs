//! MST-based Steiner tree: the algorithmic core of the paper's flexible
//! scheduler.
//!
//! The poster describes the flexible scheduler as: build an auxiliary graph,
//! weight its links by bandwidth consumption and latency, then "find MSTs
//! between the global model and local models". Connecting a *subset* of
//! vertices (the global model node and the selected local model nodes) with
//! minimum total link weight is the Steiner tree problem; the classic
//! MST-based approximation (Kou-Markowsky-Berman) is exactly "an MST between
//! the terminals" over the metric closure:
//!
//! 1. compute all-terminal-pairs shortest paths (metric closure),
//! 2. build an MST of the complete terminal graph,
//! 3. expand each MST edge back into its physical shortest path,
//! 4. take an MST of the resulting subgraph and prune non-terminal leaves.
//!
//! The result is rooted at the global-model node so that broadcast trees
//! (root -> leaves) and upload trees (leaves -> root, with aggregation at
//! branch points) fall out directly.
//!
//! This is the scheduler's hot path — it runs twice per
//! `FlexibleMst::schedule`, once per arriving task per procedure — so the
//! whole construction works on flat, index-addressed state: the metric
//! closure reuses pooled [`DijkstraScratch`]es (one Dijkstra per terminal,
//! no per-call `dist`/`parent` allocations via [`steiner_tree_in`]), the
//! subgraph MST/prune steps use dense degree/adjacency arrays, and the
//! resulting [`SteinerTree`] stores its parent pointers and children lists
//! as id-indexed arrays computed once at construction.

use crate::algo::scratch::{DijkstraScratch, ScratchPool};
use crate::error::TopoError;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::path::Path;
use crate::Result;
use crate::Topology;
use std::collections::BTreeMap;

/// A tree connecting a root to a set of terminal nodes, possibly through
/// intermediate (Steiner) nodes.
///
/// Parent pointers and children lists are flat arrays indexed by the dense
/// [`NodeId`]s, computed once at construction, so the per-edge queries the
/// schedulers hammer ([`parent_of`](SteinerTree::parent_of),
/// [`children_of`](SteinerTree::children_of)) are O(1) array reads.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// The root (global model node in scheduler use).
    pub root: NodeId,
    /// Terminals the tree was asked to span (excluding the root).
    pub terminals: Vec<NodeId>,
    /// All nodes in the tree, ascending.
    pub nodes: Vec<NodeId>,
    /// All links in the tree, ascending.
    pub links: Vec<LinkId>,
    /// `parent[n]` = next hop towards the root; `None` for the root and for
    /// nodes outside the tree. Indexed by node id over the whole topology.
    parent: Vec<Option<(NodeId, LinkId)>>,
    /// CSR children index: node `n`'s children are
    /// `child_list[child_start[n] .. child_start[n + 1]]`, ascending.
    child_start: Vec<u32>,
    child_list: Vec<NodeId>,
    /// Total weight of the tree under the weight function it was built with.
    pub total_weight: f64,
}

impl SteinerTree {
    /// Assemble the flat representation from rooted parent pointers.
    /// `parent` must be indexed by node id over the whole topology; `nodes`
    /// must be the ascending list of tree nodes.
    fn assemble(
        root: NodeId,
        terminals: Vec<NodeId>,
        nodes: Vec<NodeId>,
        links: Vec<LinkId>,
        parent: Vec<Option<(NodeId, LinkId)>>,
        total_weight: f64,
    ) -> Self {
        let n = parent.len();
        let mut child_start = vec![0u32; n + 1];
        for node in &nodes {
            if let Some((p, _)) = parent[node.index()] {
                child_start[p.index() + 1] += 1;
            }
        }
        for i in 0..n {
            child_start[i + 1] += child_start[i];
        }
        let mut cursor = child_start.clone();
        let mut child_list = vec![NodeId(0); child_start[n] as usize];
        // `nodes` ascends, so each parent's children land in ascending order.
        for node in &nodes {
            if let Some((p, _)) = parent[node.index()] {
                child_list[cursor[p.index()] as usize] = *node;
                cursor[p.index()] += 1;
            }
        }
        SteinerTree {
            root,
            terminals,
            nodes,
            links,
            parent,
            child_start,
            child_list,
            total_weight,
        }
    }

    /// Assemble a tree from rooted parent pointers — the shape incremental
    /// repair produces after grafting re-attachment paths onto a surviving
    /// fragment. `parent` must be indexed by node id over the whole
    /// topology (`parent[n] = Some((next hop towards root, link))` for
    /// every non-root tree node, `None` elsewhere); nodes and links are
    /// derived, and `total_weight` is summed from `weight` over the
    /// resulting link set.
    ///
    /// # Errors
    /// * [`TopoError::EmptyInput`] if `parent`'s length differs from the
    ///   topology's node count,
    /// * [`TopoError::Disconnected`] if some tree node's parent chain does
    ///   not reach the root (including cycles), or a terminal is missing
    ///   from the tree.
    pub fn from_parents(
        topo: &Topology,
        root: NodeId,
        terminals: Vec<NodeId>,
        parent: Vec<Option<(NodeId, LinkId)>>,
        weight: impl Fn(LinkId) -> f64,
    ) -> Result<Self> {
        let n = topo.node_count();
        if parent.len() != n {
            return Err(TopoError::EmptyInput("parent array length"));
        }
        topo.node(root)?;
        let mut nodes: Vec<NodeId> = Vec::new();
        let mut links: Vec<LinkId> = Vec::new();
        for (i, slot) in parent.iter().enumerate() {
            let id = NodeId(i as u32);
            if id == root {
                nodes.push(id);
            } else if let Some((_, l)) = slot {
                nodes.push(id);
                links.push(*l);
            }
        }
        links.sort_unstable();
        let total_weight = links.iter().map(|l| weight(*l)).sum();
        let tree = SteinerTree::assemble(root, terminals, nodes, links, parent, total_weight);
        // Integrity: every tree node must hang off the root (no cycles or
        // disconnected fragments smuggled in via the parent array), and
        // every terminal must be in the tree.
        let order = tree.bfs_from_root();
        if order.len() != tree.nodes.len() {
            // BFS follows child lists, so it terminates even when the
            // parent array smuggles in a cycle — the cycle is simply never
            // reached and shows up as a missing node here.
            let mut seen = vec![false; n];
            for x in &order {
                seen[x.index()] = true;
            }
            let stray = tree
                .nodes
                .iter()
                .copied()
                .find(|x| !seen[x.index()])
                .unwrap_or(root);
            return Err(TopoError::Disconnected {
                from: root,
                to: stray,
            });
        }
        if let Some(missing) = tree
            .terminals
            .iter()
            .copied()
            .find(|t| *t != root && tree.parent_of(*t).is_none())
        {
            return Err(TopoError::Disconnected {
                from: root,
                to: missing,
            });
        }
        Ok(tree)
    }

    /// Parent (towards root) of a tree node, `None` for the root itself.
    #[inline]
    pub fn parent_of(&self, n: NodeId) -> Option<(NodeId, LinkId)> {
        self.parent.get(n.index()).copied().flatten()
    }

    /// Children of `n`, ascending (`&[]` for leaves and non-tree nodes).
    #[inline]
    pub fn children_of(&self, n: NodeId) -> &[NodeId] {
        let i = n.index();
        if i + 1 < self.child_start.len() {
            &self.child_list[self.child_start[i] as usize..self.child_start[i + 1] as usize]
        } else {
            &[]
        }
    }

    /// Directed tree edges as `(child, parent, link)` triples, ascending by
    /// child id — the shape the schedulers iterate when rating or reserving
    /// every edge.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId, LinkId)> + '_ {
        self.nodes
            .iter()
            .filter_map(|n| self.parent_of(*n).map(|(p, l)| (*n, p, l)))
    }

    /// Children map: for every tree node the nodes whose parent it is.
    /// Compatibility view over [`children_of`](SteinerTree::children_of);
    /// hot paths should use the flat accessor directly.
    pub fn children(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        self.nodes
            .iter()
            .map(|n| (*n, self.children_of(*n).to_vec()))
            .collect()
    }

    /// Path from the root down to `n` (following tree edges).
    ///
    /// # Errors
    /// [`TopoError::Disconnected`] if `n` is not in the tree.
    pub fn path_from_root(&self, n: NodeId) -> Result<Path> {
        if n == self.root {
            return Ok(Path::trivial(n));
        }
        let mut nodes = vec![n];
        let mut links = Vec::new();
        let mut cur = n;
        while let Some((p, l)) = self.parent_of(cur) {
            nodes.push(p);
            links.push(l);
            cur = p;
            if cur == self.root {
                nodes.reverse();
                links.reverse();
                return Path::new(nodes, links);
            }
        }
        Err(TopoError::Disconnected {
            from: self.root,
            to: n,
        })
    }

    /// Depth of node `n` (root = 0), or `None` if not in the tree.
    pub fn depth(&self, n: NodeId) -> Option<usize> {
        if n == self.root {
            return Some(0);
        }
        let mut d = 0usize;
        let mut cur = n;
        while let Some((p, _)) = self.parent_of(cur) {
            d += 1;
            cur = p;
            if cur == self.root {
                return Some(d);
            }
        }
        None
    }

    /// Nodes where aggregation would run during upload: every non-leaf,
    /// non-root tree node with at least one child, plus the root. These are
    /// "the middle and final nodes of the upload procedure" from the paper.
    pub fn aggregation_points(&self) -> Vec<NodeId> {
        let mut pts: Vec<NodeId> = self
            .nodes
            .iter()
            .copied()
            .filter(|n| !self.children_of(*n).is_empty() && *n != self.root)
            .collect();
        pts.push(self.root);
        pts.sort();
        pts
    }

    /// Leaves of the tree (no children).
    pub fn leaves(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .copied()
            .filter(|n| self.children_of(*n).is_empty())
            .collect()
    }

    /// Nodes in breadth-first order from the root.
    pub fn bfs_from_root(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.nodes.len());
        order.push(self.root);
        let mut head = 0;
        while head < order.len() {
            let n = order[head];
            head += 1;
            order.extend_from_slice(self.children_of(n));
        }
        order
    }

    /// Whether every terminal is reachable in the tree.
    pub fn spans_all_terminals(&self) -> bool {
        self.terminals.iter().all(|t| self.depth(*t).is_some())
    }

    /// Decompose the tree into edge-disjoint chains between *significant*
    /// nodes (the root, every leaf, every branch node and every terminal).
    ///
    /// Each chain is returned oriented towards the root (child-significant
    /// node first), and every tree link appears in exactly one chain — the
    /// right granularity for grooming a multicast/aggregation tree without
    /// double-counting shared segments.
    pub fn chains(&self) -> Vec<Path> {
        let is_terminal = |n: NodeId| self.terminals.contains(&n);
        let is_significant =
            |n: NodeId| n == self.root || is_terminal(n) || self.children_of(n).len() != 1;
        let mut chains = Vec::new();
        for start in self.nodes.iter().copied().filter(|n| is_significant(*n)) {
            if start == self.root {
                continue;
            }
            // Walk from this significant node up to the nearest significant
            // ancestor.
            let mut nodes = vec![start];
            let mut links = Vec::new();
            let mut cur = start;
            while let Some((p, l)) = self.parent_of(cur) {
                nodes.push(p);
                links.push(l);
                cur = p;
                if is_significant(cur) {
                    break;
                }
            }
            if !links.is_empty() {
                chains.push(Path::new(nodes, links).expect("chain alternation holds"));
            }
        }
        chains
    }
}

/// Closure entries pack terminal indices into 32 bits each (the
/// `cost << 64 | i << 32 | j` format both closure variants sort); more
/// terminals than this would silently truncate, so the builders bail out
/// with a typed error first. Unreachable through the public API today —
/// node ids are themselves 32-bit — but the guard keeps the packing honest
/// if ids ever widen.
pub(crate) const MAX_CLOSURE_INDEX: usize = u32::MAX as usize;

/// Typed bail-out for terminal sets the packed closure format cannot
/// address (see [`MAX_CLOSURE_INDEX`]).
pub(crate) fn check_closure_capacity(count: usize) -> Result<()> {
    if count > MAX_CLOSURE_INDEX {
        return Err(TopoError::TooManyTerminals {
            count,
            max: MAX_CLOSURE_INDEX,
        });
    }
    Ok(())
}

/// Validate and dedupe `[root] ∪ terminals` into the working terminal set
/// both closure variants operate on (root first, then first-seen order).
pub(crate) fn terminal_set(
    topo: &Topology,
    root: NodeId,
    terminals: &[NodeId],
) -> Result<Vec<NodeId>> {
    if terminals.is_empty() {
        return Err(TopoError::EmptyInput("steiner terminals"));
    }
    topo.node(root)?;
    let mut all: Vec<NodeId> = Vec::with_capacity(terminals.len() + 1);
    all.push(root);
    for t in terminals {
        topo.node(*t)?;
        if *t != root && !all.contains(t) {
            all.push(*t);
        }
    }
    check_closure_capacity(all.len())?;
    Ok(all)
}

/// The tree when every terminal coincides with the root.
pub(crate) fn trivial_tree(topo: &Topology, root: NodeId, terminals: &[NodeId]) -> SteinerTree {
    SteinerTree::assemble(
        root,
        terminals.to_vec(),
        vec![root],
        Vec::new(),
        vec![None; topo.node_count()],
        0.0,
    )
}

/// Kruskal MST of the subgraph spanned by `allowed`, then repeatedly prune
/// leaves that are not in `keep`. Returns the surviving links ascending.
///
/// Equivalent to running `kruskal_mst` with infinite weight outside
/// `allowed` (same (weight, id) edge ordering, same union-find), but only
/// touches the O(|allowed|) subgraph instead of sorting every topology
/// link, and draws every work array from the pooled `bufs`.
pub(crate) fn prune_to_tree(
    topo: &Topology,
    keep: &[NodeId],
    allowed: &[LinkId],
    weights: &[f64],
    bufs: &mut crate::algo::scratch::PruneBufs,
) -> Result<Vec<LinkId>> {
    // Kruskal over the allowed links only, sorted by (weight, id).
    let edges = &mut bufs.edges;
    edges.clear();
    for id in allowed {
        let w = weights[id.index()];
        if w.is_infinite() {
            continue;
        }
        if w.is_nan() || w < 0.0 {
            return Err(TopoError::BadWeight {
                link: *id,
                weight: w,
            });
        }
        edges.push((w, *id));
    }
    // (weight, id) pairs are distinct in id: total order, unstable is fine.
    edges.sort_unstable_by(|(wa, la), (wb, lb)| {
        wa.partial_cmp(wb)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(la.cmp(lb))
    });
    let n = topo.node_count();
    bufs.uf.reset(n);
    let tree_links = &mut bufs.mst_links;
    tree_links.clear();
    for (_, id) in edges.iter() {
        let l = topo.link(*id)?;
        if bufs.uf.union(l.a.index(), l.b.index()) {
            tree_links.push(*id);
        }
    }
    tree_links.sort_unstable();

    // Iterative leaf pruning on flat degree/incidence arrays: peel degree-1
    // nodes that are not terminals until none remain.
    let degree = &mut bufs.degree;
    degree.clear();
    degree.resize(n, 0);
    let incident_start = &mut bufs.starts;
    incident_start.clear();
    incident_start.resize(n + 1, 0);
    for id in tree_links.iter() {
        let l = topo.link(*id)?;
        incident_start[l.a.index() + 1] += 1;
        incident_start[l.b.index() + 1] += 1;
        degree[l.a.index()] += 1;
        degree[l.b.index()] += 1;
    }
    for i in 0..n {
        incident_start[i + 1] += incident_start[i];
    }
    let cursor = &mut bufs.cursor;
    cursor.clear();
    cursor.extend_from_slice(incident_start);
    let incident = &mut bufs.incident;
    incident.clear();
    incident.resize(incident_start[n] as usize, 0);
    for (pos, id) in tree_links.iter().enumerate() {
        let l = topo.link(*id)?;
        for endpoint in [l.a, l.b] {
            incident[cursor[endpoint.index()] as usize] = pos as u32;
            cursor[endpoint.index()] += 1;
        }
    }
    let keep_mask = &mut bufs.keep_mask;
    keep_mask.clear();
    keep_mask.resize(n, false);
    for k in keep {
        keep_mask[k.index()] = true;
    }
    let alive = &mut bufs.alive;
    alive.clear();
    alive.resize(tree_links.len(), true);
    let queue = &mut bufs.queue;
    queue.clear();
    queue.extend(
        (0..n as u32)
            .map(NodeId)
            .filter(|x| degree[x.index()] == 1 && !keep_mask[x.index()]),
    );
    while let Some(leaf) = queue.pop() {
        if degree[leaf.index()] != 1 {
            continue; // became isolated (or re-queued stale entry)
        }
        let range =
            incident_start[leaf.index()] as usize..incident_start[leaf.index() + 1] as usize;
        let Some(&pos) = incident[range].iter().find(|&&p| alive[p as usize]) else {
            continue;
        };
        alive[pos as usize] = false;
        let l = topo.link(tree_links[pos as usize])?;
        for endpoint in [l.a, l.b] {
            degree[endpoint.index()] -= 1;
            if degree[endpoint.index()] == 1 && !keep_mask[endpoint.index()] {
                queue.push(endpoint);
            }
        }
    }
    Ok(tree_links
        .iter()
        .zip(alive.iter())
        .filter_map(|(id, a)| a.then_some(*id))
        .collect())
}

/// Build an MST-based Steiner tree spanning `root` and `terminals` under the
/// given link weight function (see module docs for the algorithm).
///
/// Allocates its own scratch; schedulers that build trees in a loop should
/// use [`steiner_tree_in`] with a persistent [`ScratchPool`].
///
/// # Errors
/// * [`TopoError::EmptyInput`] if `terminals` is empty,
/// * [`TopoError::Disconnected`] if some terminal is unreachable from the
///   root under finite weights.
pub fn steiner_tree(
    topo: &Topology,
    root: NodeId,
    terminals: &[NodeId],
    weight: impl Fn(&Link) -> f64,
) -> Result<SteinerTree> {
    let mut pool = ScratchPool::new();
    steiner_tree_in(topo, root, terminals, weight, &mut pool)
}

/// [`steiner_tree`] with pooled Dijkstra scratch: the metric closure's
/// per-terminal searches reuse `pool`'s buffers instead of allocating, so a
/// scheduler that keeps one pool per thread allocates no shortest-path
/// state in steady operation.
///
/// As a side effect, every search's consulted links are absorbed into the
/// pool's [`crate::algo::ReadLog`] — the construction's semantic read
/// region. (The eager per-link weight pass above is only a cache; the
/// decision depends on exactly the entries the searches consult, and the
/// later MST/prune/rooting steps touch only links the searches already
/// visited.)
pub fn steiner_tree_in(
    topo: &Topology,
    root: NodeId,
    terminals: &[NodeId],
    weight: impl Fn(&Link) -> f64,
    pool: &mut ScratchPool,
) -> Result<SteinerTree> {
    let mut spts: Vec<DijkstraScratch> = Vec::new();
    // One weight evaluation per link for the whole construction — the
    // auxiliary weight is by far the most expensive per-edge quantity the
    // searches would otherwise recompute on every visit.
    let mut weights = pool.take_weights();
    weights.extend(topo.links().iter().map(&weight));
    let mut bufs = pool.take_steiner_bufs();
    let result = steiner_tree_inner(topo, root, terminals, &weights, pool, &mut spts, &mut bufs);
    pool.give_back_steiner_bufs(bufs);
    pool.give_back_weights(weights);
    for s in spts {
        pool.read_log_mut().absorb(&s);
        pool.give_back(s);
    }
    result
}

#[allow(clippy::too_many_arguments)]
fn steiner_tree_inner(
    topo: &Topology,
    root: NodeId,
    terminals: &[NodeId],
    weights: &[f64],
    pool: &mut ScratchPool,
    spts: &mut Vec<DijkstraScratch>,
    bufs: &mut crate::algo::scratch::SteinerBufs,
) -> Result<SteinerTree> {
    let all = terminal_set(topo, root, terminals)?;
    if all.len() == 1 {
        // All terminals equal the root: trivial tree.
        return Ok(trivial_tree(topo, root, terminals));
    }

    // 1) Metric closure: shortest path trees from every terminal, computed
    //    into pooled scratches over the precomputed weights. spts[i] is
    //    only ever queried for terminals j > i (closure pairs are (i, j)
    //    with i < j, expansion reads spts[i], and the root's tree also
    //    serves the reachability check and the shortest-path-union
    //    candidate), so search i stops once `all[i..]` is settled and the
    //    last terminal's search is skipped entirely.
    for (i, t) in all.iter().enumerate().take(all.len() - 1) {
        let mut scratch = pool.take();
        scratch.run_with_weights(topo, *t, weights, Some(&all[i..]))?;
        spts.push(scratch);
    }
    for t in all.iter().skip(1) {
        if !spts[0].reachable(*t) {
            return Err(TopoError::Disconnected { from: root, to: *t });
        }
    }

    // 2) MST over the complete terminal graph (Kruskal on closure edges).
    // Entries are packed as `cost_bits << 64 | i << 32 | j`; costs are
    // non-negative, so ascending integer order is ascending (cost, i, j)
    // order — the exact ordering the unpacked sort used.
    let closure = &mut bufs.closure;
    closure.clear();
    for (i, spt) in spts.iter().enumerate() {
        for (j, t) in all.iter().enumerate().skip(i + 1) {
            let cost = spt.cost_to(*t);
            closure.push(((cost.to_bits() as u128) << 64) | ((i as u128) << 32) | j as u128);
        }
    }
    closure.sort_unstable();
    let uf = &mut bufs.prune.uf;
    uf.reset(all.len());
    let closure_edges = &mut bufs.closure_edges;
    closure_edges.clear();
    for packed in closure.iter() {
        let i = ((packed >> 32) & 0xFFFF_FFFF) as usize;
        let j = (packed & 0xFFFF_FFFF) as usize;
        if uf.union(i, j) {
            closure_edges.push((i, j));
            if uf.components() == 1 {
                break;
            }
        }
    }

    // 3) Expand closure edges into physical links (union of paths).
    let sub_links = &mut bufs.sub_links;
    sub_links.clear();
    for (i, j) in closure_edges.iter() {
        spts[*i].append_path_links(all[*j], sub_links)?;
    }
    sub_links.sort_unstable();
    sub_links.dedup();

    // 4+5) MST of the expansion subgraph + prune, compared against the
    //      pruned shortest-path union, then rooted — shared with the
    //      Mehlhorn construction.
    let tree_links = best_of_candidate_and_spt_union(topo, &all, weights, &spts[0], bufs)?;
    root_and_assemble(topo, root, &all, terminals, tree_links, weights, bufs)
}

/// Steps 4–5 shared by both closure variants: MST + non-terminal-leaf
/// pruning of the candidate subgraph held in `bufs.sub_links`, compared
/// against the pruned union of root→terminal shortest paths (`root_spt`
/// must be a completed search from the root that settled every terminal).
/// Neither candidate dominates the other; the scheduler should never do
/// worse than plain shortest-path sharing, so the lighter of the two wins.
pub(crate) fn best_of_candidate_and_spt_union(
    topo: &Topology,
    all: &[NodeId],
    weights: &[f64],
    root_spt: &DijkstraScratch,
    bufs: &mut crate::algo::scratch::SteinerBufs,
) -> Result<Vec<LinkId>> {
    let sub_links = &mut bufs.sub_links;
    let candidate_links = prune_to_tree(topo, all, sub_links, weights, &mut bufs.prune)?;

    let spt_union = &mut bufs.spt_union;
    spt_union.clear();
    for t in all.iter().skip(1) {
        root_spt.append_path_links(*t, spt_union)?;
    }
    spt_union.sort_unstable();
    spt_union.dedup();
    // Identical candidate subgraphs prune identically; skip the rerun.
    let spt_links = if spt_union == sub_links {
        candidate_links.clone()
    } else {
        prune_to_tree(topo, all, spt_union, weights, &mut bufs.prune)?
    };

    let weight_of = |links: &[LinkId]| -> f64 { links.iter().map(|l| weights[l.index()]).sum() };
    Ok(if weight_of(&candidate_links) <= weight_of(&spt_links) {
        candidate_links
    } else {
        spt_links
    })
}

/// Root `tree_links` at `root` (BFS over a CSR adjacency drawn from the
/// pooled buffers) and assemble the flat [`SteinerTree`]. Errors
/// [`TopoError::Disconnected`] if any node of `all` is unreached.
pub(crate) fn root_and_assemble(
    topo: &Topology,
    root: NodeId,
    all: &[NodeId],
    terminals: &[NodeId],
    tree_links: Vec<LinkId>,
    weights: &[f64],
    bufs: &mut crate::algo::scratch::SteinerBufs,
) -> Result<SteinerTree> {
    let n = topo.node_count();
    let adj_start = &mut bufs.prune.starts;
    adj_start.clear();
    adj_start.resize(n + 1, 0);
    for l in &tree_links {
        let link = topo.link(*l)?;
        adj_start[link.a.index() + 1] += 1;
        adj_start[link.b.index() + 1] += 1;
    }
    for i in 0..n {
        adj_start[i + 1] += adj_start[i];
    }
    let cursor = &mut bufs.prune.cursor;
    cursor.clear();
    cursor.extend_from_slice(adj_start);
    let adj = &mut bufs.adj;
    adj.clear();
    adj.resize(adj_start[n] as usize, (NodeId(0), LinkId(0)));
    for l in &tree_links {
        let link = topo.link(*l)?;
        adj[cursor[link.a.index()] as usize] = (link.b, *l);
        cursor[link.a.index()] += 1;
        adj[cursor[link.b.index()] as usize] = (link.a, *l);
        cursor[link.b.index()] += 1;
    }
    let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let visited = &mut bufs.visited;
    visited.clear();
    visited.resize(n, false);
    visited[root.index()] = true;
    let queue = &mut bufs.prune.queue;
    queue.clear();
    queue.push(root);
    let mut head = 0;
    while head < queue.len() {
        let node = queue[head];
        head += 1;
        let range = adj_start[node.index()] as usize..adj_start[node.index() + 1] as usize;
        for &(nbr, l) in &adj[range] {
            if !visited[nbr.index()] {
                visited[nbr.index()] = true;
                parent[nbr.index()] = Some((node, l));
                queue.push(nbr);
            }
        }
    }
    for t in all {
        if !visited[t.index()] {
            return Err(TopoError::Disconnected { from: root, to: *t });
        }
    }

    let total_weight = tree_links.iter().map(|l| weights[l.index()]).sum();
    let nodes: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|x| visited[x.index()])
        .collect();
    Ok(SteinerTree::assemble(
        root,
        terminals.to_vec(),
        nodes,
        tree_links,
        parent,
        total_weight,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::length_weight;
    use crate::builders;
    use crate::node::NodeKind;
    use std::collections::BTreeSet;

    /// The Figure-1 style topology: a hub G with locals hanging off shared
    /// transit routers, so sharing a path is cheaper than three end-to-end
    /// disjoint routes.
    fn fig1_like() -> (Topology, NodeId, [NodeId; 3]) {
        let mut t = Topology::new();
        let g = t.add_node(NodeKind::Server, "G");
        let r1 = t.add_node(NodeKind::IpRouter, "r1");
        let r2 = t.add_node(NodeKind::IpRouter, "r2");
        let l1 = t.add_node(NodeKind::Server, "L1");
        let l2 = t.add_node(NodeKind::Server, "L2");
        let l3 = t.add_node(NodeKind::Server, "L3");
        t.add_link(g, r1, 1.0, 100.0).unwrap();
        t.add_link(r1, l1, 1.0, 100.0).unwrap();
        t.add_link(g, r2, 1.0, 100.0).unwrap();
        t.add_link(r2, l2, 1.0, 100.0).unwrap();
        t.add_link(l2, l3, 1.0, 100.0).unwrap();
        t.add_link(r2, l3, 3.0, 100.0).unwrap();
        (t, g, [l1, l2, l3])
    }

    #[test]
    fn spans_all_terminals() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        assert!(st.spans_all_terminals());
        for l in ls {
            assert!(st.depth(l).is_some());
        }
    }

    #[test]
    fn reuses_shared_segment_like_figure_1() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        // Flexible connectivity: G->r2->L2->L3 reuses L2 as a relay rather
        // than the expensive direct r2->L3 link.
        assert!(st.links.len() <= 5);
        let p3 = st.path_from_root(ls[2]).unwrap();
        assert!(p3.nodes.contains(&ls[1]), "L3 should be fed via L2: {p3}");
    }

    #[test]
    fn tree_is_acyclic() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        assert_eq!(st.links.len(), st.nodes.len() - 1);
    }

    #[test]
    fn aggregation_points_include_root_and_branches() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let pts = st.aggregation_points();
        assert!(pts.contains(&g));
        // L2 relays L3's traffic, so it must be an aggregation point.
        assert!(pts.contains(&ls[1]));
    }

    #[test]
    fn trivial_when_terminals_equal_root() {
        let (t, g, _) = fig1_like();
        let st = steiner_tree(&t, g, &[g], length_weight).unwrap();
        assert_eq!(st.nodes, vec![g]);
        assert!(st.links.is_empty());
        assert_eq!(st.total_weight, 0.0);
    }

    #[test]
    fn empty_terminals_rejected() {
        let (t, g, _) = fig1_like();
        assert!(matches!(
            steiner_tree(&t, g, &[], length_weight),
            Err(TopoError::EmptyInput(_))
        ));
    }

    #[test]
    fn disconnected_terminal_errors() {
        let (mut t, g, _) = fig1_like();
        let island = t.add_node(NodeKind::Server, "island");
        let err = steiner_tree(&t, g, &[island], length_weight).unwrap_err();
        assert!(matches!(err, TopoError::Disconnected { .. }));
    }

    #[test]
    fn path_from_root_matches_depth() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        for l in ls {
            let p = st.path_from_root(l).unwrap();
            assert_eq!(p.hop_count(), st.depth(l).unwrap());
            p.validate(&t).unwrap();
        }
    }

    #[test]
    fn steiner_no_heavier_than_union_of_shortest_paths() {
        // Upper bound: the union of per-terminal shortest paths is a valid
        // Steiner solution, so the heuristic must not exceed its weight.
        let t = builders::nsfnet();
        let root = NodeId(0);
        let terminals = [NodeId(5), NodeId(9), NodeId(12), NodeId(3)];
        let st = steiner_tree(&t, root, &terminals, length_weight).unwrap();
        let mut union_links = BTreeSet::new();
        for t2 in terminals {
            let p = crate::algo::shortest_path(&t, root, t2, length_weight).unwrap();
            union_links.extend(p.links);
        }
        let union_weight: f64 = union_links
            .iter()
            .map(|l| t.link(*l).unwrap().length_km)
            .sum();
        assert!(
            st.total_weight <= union_weight + 1e-9,
            "steiner {} > union {}",
            st.total_weight,
            union_weight
        );
    }

    #[test]
    fn bfs_order_starts_at_root_and_covers_tree() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let order = st.bfs_from_root();
        assert_eq!(order[0], g);
        assert_eq!(order.len(), st.nodes.len());
    }

    #[test]
    fn leaves_are_terminals_after_pruning() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        for leaf in st.leaves() {
            assert!(
                leaf == g || ls.contains(&leaf),
                "non-terminal leaf {leaf} survived pruning"
            );
        }
    }

    #[test]
    fn chains_cover_every_link_exactly_once() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let chains = st.chains();
        let mut covered: Vec<_> = chains.iter().flat_map(|c| c.links.clone()).collect();
        covered.sort();
        assert_eq!(covered, st.links, "chains must partition the tree links");
        for c in &chains {
            c.validate(&t).unwrap();
        }
    }

    #[test]
    fn chains_end_at_significant_nodes() {
        let t = builders::nsfnet();
        let root = NodeId(0);
        let terminals = [NodeId(5), NodeId(9), NodeId(12)];
        let st = steiner_tree(&t, root, &terminals, length_weight).unwrap();
        for c in st.chains() {
            // Chain destination (towards root) is root, a branch, or terminal.
            let dst = c.destination();
            let is_branch = st.children_of(dst).len() > 1;
            assert!(
                dst == root || is_branch || terminals.contains(&dst),
                "chain ends at insignificant node {dst}"
            );
        }
    }

    #[test]
    fn duplicate_terminals_are_deduplicated() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &[ls[0], ls[0], ls[0]], length_weight).unwrap();
        assert!(st.spans_all_terminals());
        let p = st.path_from_root(ls[0]).unwrap();
        assert_eq!(p.destination(), ls[0]);
    }

    #[test]
    fn children_view_matches_flat_accessor() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let map = st.children();
        assert_eq!(map.len(), st.nodes.len());
        for (n, kids) in &map {
            assert_eq!(kids.as_slice(), st.children_of(*n));
        }
        // Non-tree nodes report no children.
        assert!(st.children_of(NodeId(9999)).is_empty());
    }

    #[test]
    fn pooled_and_fresh_constructions_agree() {
        let t = builders::nsfnet();
        let mut pool = ScratchPool::new();
        for root in [NodeId(0), NodeId(7)] {
            for terms in [vec![NodeId(5)], vec![NodeId(9), NodeId(12), NodeId(3)]] {
                let fresh = steiner_tree(&t, root, &terms, length_weight).unwrap();
                let pooled = steiner_tree_in(&t, root, &terms, length_weight, &mut pool).unwrap();
                assert_eq!(fresh, pooled);
            }
        }
        assert!(pool.idle() > 0, "scratches must return to the pool");
    }

    #[test]
    fn from_parents_round_trips_a_built_tree() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let weights: Vec<f64> = t.links().iter().map(length_weight).collect();
        let mut parent = vec![None; t.node_count()];
        for n in &st.nodes {
            parent[n.index()] = st.parent_of(*n);
        }
        let rebuilt =
            SteinerTree::from_parents(&t, g, st.terminals.clone(), parent, |l| weights[l.index()])
                .unwrap();
        assert_eq!(rebuilt, st);
    }

    #[test]
    fn from_parents_rejects_cycles_and_missing_terminals() {
        let (t, g, ls) = fig1_like();
        let n = t.node_count();
        let weights: Vec<f64> = t.links().iter().map(length_weight).collect();
        // A 2-cycle between l2 and l3 disconnected from the root.
        let mut parent = vec![None; n];
        let l23 = t
            .links()
            .iter()
            .find(|l| (l.a == ls[1] && l.b == ls[2]) || (l.a == ls[2] && l.b == ls[1]))
            .unwrap();
        parent[ls[1].index()] = Some((ls[2], l23.id));
        parent[ls[2].index()] = Some((ls[1], l23.id));
        assert!(matches!(
            SteinerTree::from_parents(&t, g, vec![ls[1]], parent, |l: LinkId| weights[l.index()]),
            Err(TopoError::Disconnected { .. })
        ));
        // A terminal simply absent from the parent array.
        let parent = vec![None; n];
        assert!(matches!(
            SteinerTree::from_parents(&t, g, vec![ls[0]], parent, |l: LinkId| weights[l.index()]),
            Err(TopoError::Disconnected { .. })
        ));
        // Wrong-length parent array.
        assert!(matches!(
            SteinerTree::from_parents(&t, g, vec![ls[0]], vec![None; n + 1], |l: LinkId| weights
                [l.index()]),
            Err(TopoError::EmptyInput(_))
        ));
    }

    #[test]
    fn edges_iterate_child_parent_link_triples() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let edges: Vec<_> = st.edges().collect();
        assert_eq!(edges.len(), st.links.len());
        for (child, parent, link) in edges {
            assert_eq!(st.parent_of(child), Some((parent, link)));
        }
    }
}
