//! MST-based Steiner tree: the algorithmic core of the paper's flexible
//! scheduler.
//!
//! The poster describes the flexible scheduler as: build an auxiliary graph,
//! weight its links by bandwidth consumption and latency, then "find MSTs
//! between the global model and local models". Connecting a *subset* of
//! vertices (the global model node and the selected local model nodes) with
//! minimum total link weight is the Steiner tree problem; the classic
//! MST-based approximation (Kou-Markowsky-Berman) is exactly "an MST between
//! the terminals" over the metric closure:
//!
//! 1. compute all-terminal-pairs shortest paths (metric closure),
//! 2. build an MST of the complete terminal graph,
//! 3. expand each MST edge back into its physical shortest path,
//! 4. take an MST of the resulting subgraph and prune non-terminal leaves.
//!
//! The result is rooted at the global-model node so that broadcast trees
//! (root -> leaves) and upload trees (leaves -> root, with aggregation at
//! branch points) fall out directly.

use crate::algo::dijkstra::shortest_path_tree;
use crate::algo::unionfind::UnionFind;
use crate::error::TopoError;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::path::Path;
use crate::Result;
use crate::Topology;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A tree connecting a root to a set of terminal nodes, possibly through
/// intermediate (Steiner) nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct SteinerTree {
    /// The root (global model node in scheduler use).
    pub root: NodeId,
    /// Terminals the tree was asked to span (excluding the root).
    pub terminals: Vec<NodeId>,
    /// All nodes in the tree, ascending.
    pub nodes: Vec<NodeId>,
    /// All links in the tree, ascending.
    pub links: Vec<LinkId>,
    /// `parent[n]` = next hop towards the root, for every non-root tree node.
    parent: BTreeMap<NodeId, (NodeId, LinkId)>,
    /// Total weight of the tree under the weight function it was built with.
    pub total_weight: f64,
}

impl SteinerTree {
    /// Parent (towards root) of a tree node, `None` for the root itself.
    pub fn parent_of(&self, n: NodeId) -> Option<(NodeId, LinkId)> {
        self.parent.get(&n).copied()
    }

    /// Children map: for every tree node the set of nodes whose parent it is.
    pub fn children(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut ch: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for n in &self.nodes {
            ch.entry(*n).or_default();
        }
        for (&child, &(parent, _)) in &self.parent {
            ch.entry(parent).or_default().push(child);
        }
        ch
    }

    /// Path from the root down to `n` (following tree edges).
    ///
    /// # Errors
    /// [`TopoError::Disconnected`] if `n` is not in the tree.
    pub fn path_from_root(&self, n: NodeId) -> Result<Path> {
        if n == self.root {
            return Ok(Path::trivial(n));
        }
        let mut nodes = vec![n];
        let mut links = Vec::new();
        let mut cur = n;
        while let Some(&(p, l)) = self.parent.get(&cur) {
            nodes.push(p);
            links.push(l);
            cur = p;
            if cur == self.root {
                nodes.reverse();
                links.reverse();
                return Path::new(nodes, links);
            }
        }
        Err(TopoError::Disconnected {
            from: self.root,
            to: n,
        })
    }

    /// Depth of node `n` (root = 0), or `None` if not in the tree.
    pub fn depth(&self, n: NodeId) -> Option<usize> {
        if n == self.root {
            return Some(0);
        }
        let mut d = 0usize;
        let mut cur = n;
        while let Some(&(p, _)) = self.parent.get(&cur) {
            d += 1;
            cur = p;
            if cur == self.root {
                return Some(d);
            }
        }
        None
    }

    /// Nodes where aggregation would run during upload: every non-leaf,
    /// non-root tree node with at least one child, plus the root. These are
    /// "the middle and final nodes of the upload procedure" from the paper.
    pub fn aggregation_points(&self) -> Vec<NodeId> {
        let ch = self.children();
        let mut pts: Vec<NodeId> = ch
            .iter()
            .filter(|(n, kids)| !kids.is_empty() && **n != self.root)
            .map(|(n, _)| *n)
            .collect();
        pts.push(self.root);
        pts.sort();
        pts
    }

    /// Leaves of the tree (no children).
    pub fn leaves(&self) -> Vec<NodeId> {
        let ch = self.children();
        ch.iter()
            .filter(|(_, kids)| kids.is_empty())
            .map(|(n, _)| *n)
            .collect()
    }

    /// Nodes in breadth-first order from the root.
    pub fn bfs_from_root(&self) -> Vec<NodeId> {
        let ch = self.children();
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut q = VecDeque::from([self.root]);
        while let Some(n) = q.pop_front() {
            order.push(n);
            if let Some(kids) = ch.get(&n) {
                for k in kids {
                    q.push_back(*k);
                }
            }
        }
        order
    }

    /// Whether every terminal is reachable in the tree.
    pub fn spans_all_terminals(&self) -> bool {
        self.terminals.iter().all(|t| self.depth(*t).is_some())
    }

    /// Decompose the tree into edge-disjoint chains between *significant*
    /// nodes (the root, every leaf, every branch node and every terminal).
    ///
    /// Each chain is returned oriented towards the root (child-significant
    /// node first), and every tree link appears in exactly one chain — the
    /// right granularity for grooming a multicast/aggregation tree without
    /// double-counting shared segments.
    pub fn chains(&self) -> Vec<Path> {
        let ch = self.children();
        let terminal_set: BTreeSet<NodeId> = self.terminals.iter().copied().collect();
        let significant: BTreeSet<NodeId> = self
            .nodes
            .iter()
            .copied()
            .filter(|n| {
                *n == self.root
                    || terminal_set.contains(n)
                    || ch.get(n).map(|k| k.len()).unwrap_or(0) != 1
            })
            .collect();
        let mut chains = Vec::new();
        for start in &significant {
            if *start == self.root {
                continue;
            }
            // Walk from this significant node up to the nearest significant
            // ancestor.
            let mut nodes = vec![*start];
            let mut links = Vec::new();
            let mut cur = *start;
            while let Some(&(p, l)) = self.parent.get(&cur) {
                nodes.push(p);
                links.push(l);
                cur = p;
                if significant.contains(&cur) {
                    break;
                }
            }
            if !links.is_empty() {
                chains.push(Path::new(nodes, links).expect("chain alternation holds"));
            }
        }
        chains
    }
}

/// Restrict the graph to `allowed` links, take its MST, and repeatedly prune
/// non-terminal leaves. Returns the surviving tree links.
fn prune_to_tree(
    topo: &Topology,
    terminals: &[NodeId],
    allowed: BTreeSet<LinkId>,
    weight: &impl Fn(&Link) -> f64,
) -> Result<BTreeSet<LinkId>> {
    let sub_mst = crate::algo::mst::kruskal_mst(topo, |l| {
        if allowed.contains(&l.id) {
            weight(l)
        } else {
            f64::INFINITY
        }
    })?;
    let mut tree_links: BTreeSet<LinkId> = sub_mst.links.iter().copied().collect();
    let keep: BTreeSet<NodeId> = terminals.iter().copied().collect();
    loop {
        let mut degree: BTreeMap<NodeId, Vec<LinkId>> = BTreeMap::new();
        for l in &tree_links {
            let link = topo.link(*l)?;
            degree.entry(link.a).or_default().push(*l);
            degree.entry(link.b).or_default().push(*l);
        }
        let prune: Vec<LinkId> = degree
            .iter()
            .filter(|(n, ls)| ls.len() == 1 && !keep.contains(n))
            .map(|(_, ls)| ls[0])
            .collect();
        if prune.is_empty() {
            break;
        }
        for l in prune {
            tree_links.remove(&l);
        }
    }
    Ok(tree_links)
}

/// Build an MST-based Steiner tree spanning `root` and `terminals` under the
/// given link weight function (see module docs for the algorithm).
///
/// # Errors
/// * [`TopoError::EmptyInput`] if `terminals` is empty,
/// * [`TopoError::Disconnected`] if some terminal is unreachable from the
///   root under finite weights.
pub fn steiner_tree(
    topo: &Topology,
    root: NodeId,
    terminals: &[NodeId],
    weight: impl Fn(&Link) -> f64,
) -> Result<SteinerTree> {
    if terminals.is_empty() {
        return Err(TopoError::EmptyInput("steiner terminals"));
    }
    topo.node(root)?;
    let mut all: Vec<NodeId> = Vec::with_capacity(terminals.len() + 1);
    all.push(root);
    for t in terminals {
        topo.node(*t)?;
        if *t != root && !all.contains(t) {
            all.push(*t);
        }
    }
    if all.len() == 1 {
        // All terminals equal the root: trivial tree.
        return Ok(SteinerTree {
            root,
            terminals: terminals.to_vec(),
            nodes: vec![root],
            links: Vec::new(),
            parent: BTreeMap::new(),
            total_weight: 0.0,
        });
    }

    // 1) Metric closure: shortest path trees from every terminal.
    let mut spts = Vec::with_capacity(all.len());
    for t in &all {
        spts.push(shortest_path_tree(topo, *t, &weight)?);
    }
    for (i, t) in all.iter().enumerate().skip(1) {
        if !spts[0].reachable(*t) {
            return Err(TopoError::Disconnected { from: root, to: *t });
        }
        let _ = i;
    }

    // 2) MST over the complete terminal graph (Kruskal on closure edges).
    let mut closure: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..all.len() {
        for j in (i + 1)..all.len() {
            closure.push((spts[i].cost_to(all[j]), i, j));
        }
    }
    closure.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.1.cmp(&b.1))
            .then(a.2.cmp(&b.2))
    });
    let mut uf = UnionFind::new(all.len());
    let mut closure_edges: Vec<(usize, usize)> = Vec::new();
    for (_, i, j) in &closure {
        if uf.union(*i, *j) {
            closure_edges.push((*i, *j));
            if uf.components() == 1 {
                break;
            }
        }
    }

    // 3) Expand closure edges into physical links (union of paths).
    let mut sub_links: BTreeSet<LinkId> = BTreeSet::new();
    for (i, j) in closure_edges {
        let p = spts[i].path_to(all[j])?;
        sub_links.extend(p.links.iter().copied());
    }

    // 4) MST of the expansion subgraph, then prune non-terminal leaves.
    let kmb_links = prune_to_tree(topo, &all, sub_links, &weight)?;

    // 5) Second candidate: the pruned union of root->terminal shortest
    //    paths. KMB does not dominate it (nor vice versa); the scheduler
    //    should never do worse than plain shortest-path sharing, so take
    //    the lighter of the two.
    let mut spt_union: BTreeSet<LinkId> = BTreeSet::new();
    for t in all.iter().skip(1) {
        spt_union.extend(spts[0].path_to(*t)?.links.iter().copied());
    }
    let spt_links = prune_to_tree(topo, &all, spt_union, &weight)?;

    let weight_of = |links: &BTreeSet<LinkId>| -> f64 {
        links
            .iter()
            .map(|l| weight(topo.link(*l).expect("tree link exists")))
            .sum()
    };
    let tree_links = if weight_of(&kmb_links) <= weight_of(&spt_links) {
        kmb_links
    } else {
        spt_links
    };

    // Root the tree: BFS from root over tree links.
    let mut adj: BTreeMap<NodeId, Vec<(NodeId, LinkId)>> = BTreeMap::new();
    for l in &tree_links {
        let link = topo.link(*l)?;
        adj.entry(link.a).or_default().push((link.b, *l));
        adj.entry(link.b).or_default().push((link.a, *l));
    }
    let mut parent: BTreeMap<NodeId, (NodeId, LinkId)> = BTreeMap::new();
    let mut visited: BTreeSet<NodeId> = BTreeSet::from([root]);
    let mut q = VecDeque::from([root]);
    while let Some(n) = q.pop_front() {
        if let Some(nbrs) = adj.get(&n) {
            for (nbr, l) in nbrs {
                if visited.insert(*nbr) {
                    parent.insert(*nbr, (n, *l));
                    q.push_back(*nbr);
                }
            }
        }
    }
    for t in &all {
        if !visited.contains(t) {
            return Err(TopoError::Disconnected { from: root, to: *t });
        }
    }

    let total_weight = tree_links
        .iter()
        .map(|l| weight(topo.link(*l).expect("tree link exists")))
        .sum();
    Ok(SteinerTree {
        root,
        terminals: terminals.to_vec(),
        nodes: visited.into_iter().collect(),
        links: tree_links.into_iter().collect(),
        parent,
        total_weight,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::length_weight;
    use crate::builders;
    use crate::node::NodeKind;

    /// The Figure-1 style topology: a hub G with locals hanging off shared
    /// transit routers, so sharing a path is cheaper than three end-to-end
    /// disjoint routes.
    fn fig1_like() -> (Topology, NodeId, [NodeId; 3]) {
        let mut t = Topology::new();
        let g = t.add_node(NodeKind::Server, "G");
        let r1 = t.add_node(NodeKind::IpRouter, "r1");
        let r2 = t.add_node(NodeKind::IpRouter, "r2");
        let l1 = t.add_node(NodeKind::Server, "L1");
        let l2 = t.add_node(NodeKind::Server, "L2");
        let l3 = t.add_node(NodeKind::Server, "L3");
        t.add_link(g, r1, 1.0, 100.0).unwrap();
        t.add_link(r1, l1, 1.0, 100.0).unwrap();
        t.add_link(g, r2, 1.0, 100.0).unwrap();
        t.add_link(r2, l2, 1.0, 100.0).unwrap();
        t.add_link(l2, l3, 1.0, 100.0).unwrap();
        t.add_link(r2, l3, 3.0, 100.0).unwrap();
        (t, g, [l1, l2, l3])
    }

    #[test]
    fn spans_all_terminals() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        assert!(st.spans_all_terminals());
        for l in ls {
            assert!(st.depth(l).is_some());
        }
    }

    #[test]
    fn reuses_shared_segment_like_figure_1() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        // Flexible connectivity: G->r2->L2->L3 reuses L2 as a relay rather
        // than the expensive direct r2->L3 link.
        assert!(st.links.len() <= 5);
        let p3 = st.path_from_root(ls[2]).unwrap();
        assert!(p3.nodes.contains(&ls[1]), "L3 should be fed via L2: {p3}");
    }

    #[test]
    fn tree_is_acyclic() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        assert_eq!(st.links.len(), st.nodes.len() - 1);
    }

    #[test]
    fn aggregation_points_include_root_and_branches() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let pts = st.aggregation_points();
        assert!(pts.contains(&g));
        // L2 relays L3's traffic, so it must be an aggregation point.
        assert!(pts.contains(&ls[1]));
    }

    #[test]
    fn trivial_when_terminals_equal_root() {
        let (t, g, _) = fig1_like();
        let st = steiner_tree(&t, g, &[g], length_weight).unwrap();
        assert_eq!(st.nodes, vec![g]);
        assert!(st.links.is_empty());
        assert_eq!(st.total_weight, 0.0);
    }

    #[test]
    fn empty_terminals_rejected() {
        let (t, g, _) = fig1_like();
        assert!(matches!(
            steiner_tree(&t, g, &[], length_weight),
            Err(TopoError::EmptyInput(_))
        ));
    }

    #[test]
    fn disconnected_terminal_errors() {
        let (mut t, g, _) = fig1_like();
        let island = t.add_node(NodeKind::Server, "island");
        let err = steiner_tree(&t, g, &[island], length_weight).unwrap_err();
        assert!(matches!(err, TopoError::Disconnected { .. }));
    }

    #[test]
    fn path_from_root_matches_depth() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        for l in ls {
            let p = st.path_from_root(l).unwrap();
            assert_eq!(p.hop_count(), st.depth(l).unwrap());
            p.validate(&t).unwrap();
        }
    }

    #[test]
    fn steiner_no_heavier_than_union_of_shortest_paths() {
        // Upper bound: the union of per-terminal shortest paths is a valid
        // Steiner solution, so the heuristic must not exceed its weight.
        let t = builders::nsfnet();
        let root = NodeId(0);
        let terminals = [NodeId(5), NodeId(9), NodeId(12), NodeId(3)];
        let st = steiner_tree(&t, root, &terminals, length_weight).unwrap();
        let mut union_links = BTreeSet::new();
        for t2 in terminals {
            let p = crate::algo::shortest_path(&t, root, t2, length_weight).unwrap();
            union_links.extend(p.links);
        }
        let union_weight: f64 = union_links
            .iter()
            .map(|l| t.link(*l).unwrap().length_km)
            .sum();
        assert!(
            st.total_weight <= union_weight + 1e-9,
            "steiner {} > union {}",
            st.total_weight,
            union_weight
        );
    }

    #[test]
    fn bfs_order_starts_at_root_and_covers_tree() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let order = st.bfs_from_root();
        assert_eq!(order[0], g);
        assert_eq!(order.len(), st.nodes.len());
    }

    #[test]
    fn leaves_are_terminals_after_pruning() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        for leaf in st.leaves() {
            assert!(
                leaf == g || ls.contains(&leaf),
                "non-terminal leaf {leaf} survived pruning"
            );
        }
    }

    #[test]
    fn chains_cover_every_link_exactly_once() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &ls, length_weight).unwrap();
        let chains = st.chains();
        let mut covered: Vec<_> = chains.iter().flat_map(|c| c.links.clone()).collect();
        covered.sort();
        assert_eq!(covered, st.links, "chains must partition the tree links");
        for c in &chains {
            c.validate(&t).unwrap();
        }
    }

    #[test]
    fn chains_end_at_significant_nodes() {
        let t = builders::nsfnet();
        let root = NodeId(0);
        let terminals = [NodeId(5), NodeId(9), NodeId(12)];
        let st = steiner_tree(&t, root, &terminals, length_weight).unwrap();
        for c in st.chains() {
            // Chain destination (towards root) is root, a branch, or terminal.
            let dst = c.destination();
            let ch = st.children();
            let is_branch = ch.get(&dst).map(|k| k.len()).unwrap_or(0) > 1;
            assert!(
                dst == root || is_branch || terminals.contains(&dst),
                "chain ends at insignificant node {dst}"
            );
        }
    }

    #[test]
    fn duplicate_terminals_are_deduplicated() {
        let (t, g, ls) = fig1_like();
        let st = steiner_tree(&t, g, &[ls[0], ls[0], ls[0]], length_weight).unwrap();
        assert!(st.spans_all_terminals());
        let p = st.path_from_root(ls[0]).unwrap();
        assert_eq!(p.destination(), ls[0]);
    }
}
