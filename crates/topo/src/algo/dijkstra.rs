//! Dijkstra shortest paths with deterministic tie-breaking.

use crate::algo::scratch::DijkstraScratch;
use crate::error::TopoError;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::path::Path;
use crate::Result;
use crate::Topology;

/// The result of a single-source shortest-path computation.
#[derive(Debug, Clone)]
pub struct ShortestPathTree {
    /// The source node.
    pub source: NodeId,
    /// `dist[n]` = cost of the cheapest path from the source, or
    /// `f64::INFINITY` if unreachable.
    pub dist: Vec<f64>,
    /// `parent[n]` = previous hop on the cheapest path (`None` for the
    /// source and unreachable nodes).
    pub parent: Vec<Option<(NodeId, LinkId)>>,
}

impl ShortestPathTree {
    /// Whether `n` is reachable from the source.
    pub fn reachable(&self, n: NodeId) -> bool {
        self.dist.get(n.index()).is_some_and(|d| d.is_finite())
    }

    /// Cost of the cheapest path to `n` (infinite if unreachable).
    pub fn cost_to(&self, n: NodeId) -> f64 {
        self.dist.get(n.index()).copied().unwrap_or(f64::INFINITY)
    }

    /// Reconstruct the cheapest path from the source to `to`.
    ///
    /// # Errors
    /// [`TopoError::Disconnected`] if `to` is unreachable.
    pub fn path_to(&self, to: NodeId) -> Result<Path> {
        if !self.reachable(to) {
            return Err(TopoError::Disconnected {
                from: self.source,
                to,
            });
        }
        let mut nodes = vec![to];
        let mut links = Vec::new();
        let mut cur = to;
        while let Some((prev, link)) = self.parent[cur.index()] {
            nodes.push(prev);
            links.push(link);
            cur = prev;
        }
        nodes.reverse();
        links.reverse();
        Path::new(nodes, links)
    }
}

/// Run Dijkstra from `source` under the given link weight function.
///
/// Weights must be non-negative; `f64::INFINITY` marks a link unusable and
/// NaN or negative weights produce [`TopoError::BadWeight`].
///
/// This allocates a fresh result; hot paths that run many searches should
/// reuse a [`DijkstraScratch`] (see [`crate::algo::scratch`]) instead —
/// both run the identical algorithm.
pub fn shortest_path_tree(
    topo: &Topology,
    source: NodeId,
    weight: impl Fn(&Link) -> f64,
) -> Result<ShortestPathTree> {
    let mut scratch = DijkstraScratch::new();
    scratch.run(topo, source, weight)?;
    let (dist, parent) = scratch.export(topo.node_count());
    Ok(ShortestPathTree {
        source,
        dist,
        parent,
    })
}

/// Cheapest path from `from` to `to` under `weight`.
///
/// # Errors
/// [`TopoError::Disconnected`] if no finite-weight path exists.
pub fn shortest_path(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    weight: impl Fn(&Link) -> f64,
) -> Result<Path> {
    topo.node(to)?;
    if from == to {
        return Ok(Path::trivial(from));
    }
    shortest_path_tree(topo, from, weight)?.path_to(to)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::hop_weight;
    use crate::builders;
    use crate::node::NodeKind;

    fn diamond() -> (Topology, [NodeId; 4]) {
        // a - b - d  (top, lengths 1+1)
        //  \- c -/   (bottom, lengths 5+5)
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::IpRouter, "a");
        let b = t.add_node(NodeKind::IpRouter, "b");
        let c = t.add_node(NodeKind::IpRouter, "c");
        let d = t.add_node(NodeKind::IpRouter, "d");
        t.add_link(a, b, 1.0, 100.0).unwrap();
        t.add_link(b, d, 1.0, 100.0).unwrap();
        t.add_link(a, c, 5.0, 100.0).unwrap();
        t.add_link(c, d, 5.0, 100.0).unwrap();
        (t, [a, b, c, d])
    }

    #[test]
    fn picks_cheaper_branch() {
        let (t, [a, _, _, d]) = diamond();
        let p = shortest_path(&t, a, d, crate::algo::length_weight).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert!((p.length_km(&t).unwrap() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infinite_weight_disables_link() {
        let (t, [a, _, c, d]) = diamond();
        // Disable the short branch: route must fall back to a-c-d.
        let p = shortest_path(&t, a, d, |l| {
            if l.length_km < 2.0 {
                f64::INFINITY
            } else {
                l.length_km
            }
        })
        .unwrap();
        assert_eq!(p.nodes, vec![a, c, d]);
    }

    #[test]
    fn all_links_disabled_is_disconnected() {
        let (t, [a, _, _, d]) = diamond();
        let err = shortest_path(&t, a, d, |_| f64::INFINITY).unwrap_err();
        assert_eq!(err, TopoError::Disconnected { from: a, to: d });
    }

    #[test]
    fn negative_weight_is_rejected() {
        let (t, [a, _, _, d]) = diamond();
        let err = shortest_path(&t, a, d, |_| -1.0).unwrap_err();
        assert!(matches!(err, TopoError::BadWeight { .. }));
    }

    #[test]
    fn trivial_when_source_equals_destination() {
        let (t, [a, ..]) = diamond();
        let p = shortest_path(&t, a, a, hop_weight).unwrap();
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.source(), a);
    }

    #[test]
    fn tree_distances_are_monotone_along_paths() {
        let t = builders::ring(8, 10.0, 100.0);
        let spt = shortest_path_tree(&t, NodeId(0), hop_weight).unwrap();
        for n in t.node_ids() {
            if let Some((prev, _)) = spt.parent[n.index()] {
                assert!(spt.cost_to(prev) < spt.cost_to(n));
            }
        }
    }

    #[test]
    fn ring_shortest_goes_the_short_way_round() {
        let t = builders::ring(6, 10.0, 100.0);
        let p = shortest_path(&t, NodeId(0), NodeId(2), hop_weight).unwrap();
        assert_eq!(p.hop_count(), 2);
        let p2 = shortest_path(&t, NodeId(0), NodeId(4), hop_weight).unwrap();
        assert_eq!(p2.hop_count(), 2); // the other way round
    }

    #[test]
    fn deterministic_between_runs() {
        let t = builders::random_connected(24, 0.2, 7, 100.0);
        let p1 = shortest_path(&t, NodeId(0), NodeId(20), crate::algo::length_weight).unwrap();
        let p2 = shortest_path(&t, NodeId(0), NodeId(20), crate::algo::length_weight).unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn unknown_nodes_error() {
        let (t, _) = diamond();
        assert!(shortest_path(&t, NodeId(0), NodeId(99), hop_weight).is_err());
        assert!(shortest_path_tree(&t, NodeId(99), hop_weight).is_err());
    }

    #[test]
    fn produced_paths_validate() {
        let t = builders::nsfnet();
        for to in t.node_ids().skip(1) {
            let p = shortest_path(&t, NodeId(0), to, crate::algo::length_weight).unwrap();
            p.validate(&t).unwrap();
            assert!(p.is_node_simple());
        }
    }
}
