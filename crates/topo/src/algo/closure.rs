//! Closure engine: a stamp-keyed cache of Mehlhorn Voronoi passes, with
//! incremental maintenance under small weight deltas.
//!
//! [`crate::algo::steiner_tree_sparse_in`] made one decision cost
//! `O(E log V)` independent of the terminal count — but every decision
//! still pays a *full* multi-source pass, even when the weight regime
//! barely changed since the last solve of the same task. At national
//! scale (10⁵–10⁶ links) that full pass dominates, and the scheduler's
//! hot loops re-solve the *same* (root, terminals, weight-regime) key
//! over and over: `BatchScheduler` wave re-speculation re-proposes every
//! pending task once per wave against one snapshot, admission retries
//! re-propose after a conflict, and drift checks shadow-solve a task's
//! own tree.
//!
//! A [`ClosureCache`] amortises that work. Each entry holds the labeled
//! multi-source pass (distances, parents, Voronoi labels), the root's
//! shortest-path tree, and the sorted boundary-edge candidate list —
//! everything `sparse_inner` derives before its Kruskal — keyed by the
//! decision key and guarded by **per-link mutation stamps**. A solve
//! compares stamps link-by-link:
//!
//! * no stamp moved (or none of the moved links' weights actually
//!   changed) → **hit**: the cached tree is returned as-is;
//! * a small weight delta → **repair**: both passes are repaired in
//!   place by [`DijkstraScratch::repair_multi_with_weights`] (flooding
//!   only the affected frontier region), the candidate list is patched
//!   around the touched nodes, and only the cheap Kruskal/expansion tail
//!   re-runs;
//! * a large delta, or a repair whose affected region exceeds its
//!   budget → **full solve** with the deterministic bucketed pass
//!   ([`DijkstraScratch::run_multi_bucketed_with_weights`]).
//!
//! Every path is pinned to produce the tree `steiner_tree_sparse_in`
//! would build from scratch, bit-for-bit: the repair and bucketed passes
//! are canonical-tie-break equivalent to the heap pass (see their docs),
//! and the candidate list is maintained to be exactly the boundary scan's
//! output. The tests below and `tests/proptests.rs` enforce this.
//!
//! **Soundness contract** (the caller's side of the key): two solves
//! presenting the same `regime` tokens and the same per-link stamp for a
//! link must observe the same weight for that link. The scheduler keys
//! the regime on the topology identity, weight-function discriminator
//! and its scalar parameters, and stamps each link with the snapshot's
//! IP + optical mutation counters — every input of its weight function
//! bumps one of those counters when it changes. Comparison is exact
//! everywhere (no hashing), so a stale entry can only come from a
//! violated contract, never from a collision.

use crate::algo::scratch::{DijkstraScratch, ScratchPool};
use crate::algo::steiner::{
    best_of_candidate_and_spt_union, root_and_assemble, terminal_set, trivial_tree, SteinerTree,
};
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::Result;
use crate::Topology;

/// `entry_of` sentinel: the link currently contributes no boundary
/// candidate. Real candidate costs are finite-or-infinite f64 bit
/// patterns produced by non-negative sums, all strictly below `u64::MAX`.
const ABSENT: u64 = u64::MAX;

/// Cumulative decision counters of a [`ClosureCache`]. Every
/// [`ClosureCache::solve_in`] ends in exactly one of `hits` / `repairs` /
/// `full_solves`; `fallbacks` counts the subset of `full_solves` where an
/// attempted repair bailed on its affected-region budget.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ClosureStats {
    /// Decisions answered from the cache without touching the passes.
    pub hits: u64,
    /// Decisions answered by incremental repair + tail re-run.
    pub repairs: u64,
    /// Decisions that ran (or re-ran) the full passes.
    pub full_solves: u64,
    /// `full_solves` caused by a repair exceeding its region budget.
    pub fallbacks: u64,
}

impl ClosureStats {
    /// Total decisions these counters cover.
    pub fn decisions(&self) -> u64 {
        self.hits + self.repairs + self.full_solves
    }

    /// Decisions that avoided a full pass (hits + repairs).
    pub fn amortised(&self) -> u64 {
        self.hits + self.repairs
    }

    /// Counter-wise difference `self - earlier` (for per-job deltas).
    pub fn since(&self, earlier: &ClosureStats) -> ClosureStats {
        ClosureStats {
            hits: self.hits - earlier.hits,
            repairs: self.repairs - earlier.repairs,
            full_solves: self.full_solves - earlier.full_solves,
            fallbacks: self.fallbacks - earlier.fallbacks,
        }
    }

    /// Counter-wise accumulation (for merging per-worker deltas).
    pub fn merge(&mut self, other: &ClosureStats) {
        self.hits += other.hits;
        self.repairs += other.repairs;
        self.full_solves += other.full_solves;
        self.fallbacks += other.fallbacks;
    }
}

/// The cached result of a solve: either the assembled tree or the
/// deterministic disconnection verdict (both are pure functions of the
/// entry's pass state, so both cache equally well).
#[derive(Debug, Clone)]
enum CachedOutcome {
    Tree(SteinerTree),
    Disconnected { from: NodeId, to: NodeId },
}

/// One cached closure: the two passes, the candidate list and the result
/// for a single (root, terminals, regime) key.
#[derive(Debug)]
struct Entry {
    root: NodeId,
    /// Raw terminal list as the caller passed it (part of the key: the
    /// assembled tree records it verbatim).
    terminals: Vec<NodeId>,
    /// Deduplicated `[root] ∪ terminals` — the pass sources.
    all: Vec<NodeId>,
    /// Caller-supplied weight-regime tokens (part of the key).
    regime: Vec<u64>,
    /// Structural guard: the key is only valid on a topology with these
    /// exact node/link counts.
    node_count: usize,
    link_count: usize,
    /// Per-link stamp tokens at the time `weights` was last refreshed.
    stamps: Vec<[u64; 2]>,
    /// Current per-link weights under the entry's regime.
    weights: Vec<f64>,
    /// Full (no early exit) multi-source Voronoi pass from `all`.
    voronoi: DijkstraScratch,
    /// Full single-source pass from `root` (output-identical to the
    /// early-exiting SPT for every settled terminal, which is all the
    /// shared tail reads).
    root_spt: DijkstraScratch,
    /// Sorted boundary candidates packed `cost_bits << 64 | link`, as the
    /// boundary scan produces them.
    base: Vec<u128>,
    /// Sorted post-repair candidate additions, merged with `base` at
    /// Kruskal time and compacted into it when it grows.
    overlay: Vec<u128>,
    /// Validity oracle: `entry_of[l]` is the cost bits of link `l`'s
    /// current candidate, or [`ABSENT`]. Merge entries disagreeing with
    /// it are stale and skipped.
    entry_of: Vec<u64>,
    outcome: CachedOutcome,
    last_used: u64,
}

impl Entry {
    fn matches(&self, topo: &Topology, root: NodeId, terminals: &[NodeId], regime: &[u64]) -> bool {
        self.root == root
            && self.node_count == topo.node_count()
            && self.link_count == topo.link_count()
            && self.terminals == terminals
            && self.regime == regime
    }
}

/// Stamp-keyed cache of Mehlhorn closure passes (see module docs).
///
/// One cache typically lives inside each worker's [`ScratchPool`]
/// ([`ScratchPool::take_closure_cache`]), so persistent scheduling workers
/// keep their passes warm across waves, rounds and runs. Entries are
/// evicted least-recently-used under a total *link-slot* budget — each
/// entry costs O(E) memory, so the budget adapts the entry count to the
/// fabric scale (thousands of warm tasks at metro scale, a couple at
/// 10⁶ links).
#[derive(Debug)]
pub struct ClosureCache {
    entries: Vec<Entry>,
    /// Eviction budget: sum of `link_count` over entries.
    max_cached_links: usize,
    /// Hard entry-count cap (bounds the key scan).
    max_entries: usize,
    /// Deltas with more changed links than this skip the repair attempt.
    max_changed_links: usize,
    tick: u64,
    stats: ClosureStats,
    // Reusable work buffers.
    changed: Vec<(LinkId, f64)>,
    touched: Vec<NodeId>,
    touched_spt: Vec<NodeId>,
    link_mark: Vec<u32>,
    link_epoch: u32,
    overlay_new: Vec<u128>,
    compact_buf: Vec<u128>,
}

impl Default for ClosureCache {
    fn default() -> Self {
        ClosureCache {
            entries: Vec::new(),
            max_cached_links: 2_000_000,
            max_entries: 256,
            max_changed_links: 256,
            tick: 0,
            stats: ClosureStats::default(),
            changed: Vec::new(),
            touched: Vec::new(),
            touched_spt: Vec::new(),
            link_mark: Vec::new(),
            link_epoch: 0,
            overlay_new: Vec::new(),
            compact_buf: Vec::new(),
        }
    }
}

impl ClosureCache {
    /// Fresh cache with default budgets.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative decision counters.
    pub fn stats(&self) -> ClosureStats {
        self.stats
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Override the total link-slot eviction budget.
    pub fn set_link_budget(&mut self, links: usize) {
        self.max_cached_links = links.max(1);
    }

    /// Override the changed-link count above which a delta goes straight
    /// to a full solve (0 disables repair entirely).
    pub fn set_max_changed_links(&mut self, links: usize) {
        self.max_changed_links = links;
    }

    /// Drop every entry (counters survive).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Affected-region budget for a repair on an `n`-node fabric: repairs
    /// flooding more than ~1/16 of the fabric stop paying for themselves
    /// against the bucketed full pass.
    fn node_budget(n: usize) -> usize {
        (n / 16).max(1024)
    }

    /// Solve the (root, terminals) Steiner instance under `weight`,
    /// sharing and incrementally maintaining the closure passes across
    /// calls with the same `(root, terminals, regime)` key.
    ///
    /// `regime` must tokenise everything the weight function closes over
    /// except per-link snapshot state, and `stamp_of` must return a token
    /// that changes whenever link `l`'s snapshot state changes (see the
    /// module-level soundness contract). The result — tree or error — is
    /// exactly what [`crate::algo::steiner_tree_sparse_in`] returns for
    /// the same inputs, and like it the decision's recorded read region
    /// is the whole link set.
    #[allow(clippy::too_many_arguments)]
    pub fn solve_in(
        &mut self,
        topo: &Topology,
        root: NodeId,
        terminals: &[NodeId],
        regime: &[u64],
        stamp_of: impl Fn(LinkId) -> [u64; 2],
        weight: impl Fn(&Link) -> f64,
        pool: &mut ScratchPool,
    ) -> Result<SteinerTree> {
        let all = terminal_set(topo, root, terminals)?;
        pool.read_log_mut().record_all(topo.link_count());
        if all.len() == 1 {
            return Ok(trivial_tree(topo, root, terminals));
        }
        self.tick += 1;
        let tick = self.tick;

        let found = self
            .entries
            .iter()
            .position(|e| e.matches(topo, root, terminals, regime));
        let Some(idx) = found else {
            let entry =
                self.full_solve_new(topo, root, terminals, all, regime, &stamp_of, &weight, pool)?;
            self.stats.full_solves += 1;
            let out = materialise(&entry.outcome);
            self.insert(entry);
            return out;
        };
        let mut e = self.entries.swap_remove(idx);
        e.last_used = tick;

        // Stamp diff → real weight delta. Stamps are refreshed for every
        // moved link; `changed` keeps only links whose weight bits moved.
        let links = topo.links();
        self.changed.clear();
        for (i, link) in links.iter().enumerate() {
            let s = stamp_of(link.id);
            if e.stamps[i] != s {
                e.stamps[i] = s;
                let w = weight(link);
                if w.to_bits() != e.weights[i].to_bits() {
                    self.changed.push((link.id, e.weights[i]));
                    e.weights[i] = w;
                }
            }
        }

        if self.changed.is_empty() {
            self.stats.hits += 1;
            let out = materialise(&e.outcome);
            self.entries.push(e);
            return out;
        }

        let mut repaired = false;
        if self.changed.len() <= self.max_changed_links {
            let budget = Self::node_budget(topo.node_count());
            let mut touched = std::mem::take(&mut self.touched);
            let ok_voronoi = e.voronoi.repair_multi_with_weights(
                topo,
                &e.weights,
                &self.changed,
                budget,
                &mut touched,
            )?;
            if ok_voronoi {
                let mut touched_spt = std::mem::take(&mut self.touched_spt);
                let ok_spt = e.root_spt.repair_multi_with_weights(
                    topo,
                    &e.weights,
                    &self.changed,
                    budget,
                    &mut touched_spt,
                )?;
                self.touched_spt = touched_spt;
                if ok_spt {
                    self.patch_candidates(topo, &mut e, &touched)?;
                    repaired = true;
                }
            }
            self.touched = touched;
            if !repaired {
                self.stats.fallbacks += 1;
            }
        }
        if repaired {
            self.stats.repairs += 1;
        } else {
            self.stats.full_solves += 1;
            Self::full_passes(topo, &mut e)?;
        }
        e.outcome = assemble(topo, &mut e, pool)?;
        let out = materialise(&e.outcome);
        self.entries.push(e);
        out
    }

    /// Build a brand-new entry with full bucketed passes and a fresh
    /// boundary scan.
    #[allow(clippy::too_many_arguments)]
    fn full_solve_new(
        &mut self,
        topo: &Topology,
        root: NodeId,
        terminals: &[NodeId],
        all: Vec<NodeId>,
        regime: &[u64],
        stamp_of: &impl Fn(LinkId) -> [u64; 2],
        weight: &impl Fn(&Link) -> f64,
        pool: &mut ScratchPool,
    ) -> Result<Entry> {
        let links = topo.links();
        let mut weights = Vec::with_capacity(links.len());
        let mut stamps = Vec::with_capacity(links.len());
        for link in links {
            weights.push(weight(link));
            stamps.push(stamp_of(link.id));
        }
        let mut e = Entry {
            root,
            terminals: terminals.to_vec(),
            all,
            regime: regime.to_vec(),
            node_count: topo.node_count(),
            link_count: topo.link_count(),
            stamps,
            weights,
            voronoi: pool.take(),
            root_spt: pool.take(),
            base: Vec::new(),
            overlay: Vec::new(),
            entry_of: Vec::new(),
            outcome: CachedOutcome::Disconnected {
                from: root,
                to: root,
            },
            last_used: self.tick,
        };
        Self::full_passes(topo, &mut e)?;
        e.outcome = assemble(topo, &mut e, pool)?;
        Ok(e)
    }

    /// Run both passes from scratch (deterministic bucketed variant) and
    /// rebuild the boundary candidate list.
    fn full_passes(topo: &Topology, e: &mut Entry) -> Result<()> {
        e.voronoi
            .run_multi_bucketed_with_weights(topo, &e.all, &e.weights)?;
        e.root_spt
            .run_multi_bucketed_with_weights(topo, &[e.root], &e.weights)?;
        e.base.clear();
        e.overlay.clear();
        e.entry_of.clear();
        e.entry_of.resize(topo.link_count(), ABSENT);
        for link in topo.links() {
            if let Some(bits) = candidate_bits(&e.voronoi, link, e.weights[link.id.index()]) {
                e.entry_of[link.id.index()] = bits;
                e.base.push(pack(bits, link.id));
            }
        }
        e.base.sort_unstable();
        Ok(())
    }

    /// After a repair, re-evaluate the candidate entry of every *dirty*
    /// link — the changed links plus every link incident to a node the
    /// Voronoi repair touched — and fold the additions into the overlay.
    fn patch_candidates(
        &mut self,
        topo: &Topology,
        e: &mut Entry,
        touched: &[NodeId],
    ) -> Result<()> {
        let n = topo.link_count();
        if self.link_mark.len() < n {
            self.link_mark.resize(n, 0);
        }
        if self.link_epoch == u32::MAX {
            self.link_mark.fill(0);
            self.link_epoch = 0;
        }
        self.link_epoch += 1;
        let epoch = self.link_epoch;
        self.overlay_new.clear();

        let visit = |link_mark: &mut Vec<u32>,
                     overlay_new: &mut Vec<u128>,
                     e: &mut Entry,
                     l: LinkId|
         -> Result<()> {
            if link_mark[l.index()] == epoch {
                return Ok(());
            }
            link_mark[l.index()] = epoch;
            let link = topo.link(l)?;
            let want = candidate_bits(&e.voronoi, link, e.weights[l.index()]);
            let want_bits = want.unwrap_or(ABSENT);
            if e.entry_of[l.index()] != want_bits {
                e.entry_of[l.index()] = want_bits;
                if let Some(bits) = want {
                    overlay_new.push(pack(bits, l));
                }
            }
            Ok(())
        };
        for &(l, _) in &self.changed {
            visit(&mut self.link_mark, &mut self.overlay_new, e, l)?;
        }
        for &node in touched {
            for &(_, l) in topo.neighbors(node)? {
                visit(&mut self.link_mark, &mut self.overlay_new, e, l)?;
            }
        }
        if !self.overlay_new.is_empty() {
            e.overlay.extend_from_slice(&self.overlay_new);
            e.overlay.sort_unstable();
        }
        // Compact once the overlay stops being "small": merge both sorted
        // runs, dropping stale entries and duplicates.
        if e.overlay.len() > e.base.len() / 4 + 64 {
            let merged = &mut self.compact_buf;
            merged.clear();
            merged.reserve(e.base.len() + e.overlay.len());
            let (mut i, mut j) = (0usize, 0usize);
            let mut last: Option<u128> = None;
            loop {
                let packed = match (e.base.get(i), e.overlay.get(j)) {
                    (Some(&a), Some(&b)) => {
                        if a <= b {
                            i += 1;
                            a
                        } else {
                            j += 1;
                            b
                        }
                    }
                    (Some(&a), None) => {
                        i += 1;
                        a
                    }
                    (None, Some(&b)) => {
                        j += 1;
                        b
                    }
                    (None, None) => break,
                };
                if last == Some(packed) {
                    continue;
                }
                let (bits, l) = unpack(packed);
                if e.entry_of[l.index()] == bits {
                    merged.push(packed);
                    last = Some(packed);
                }
            }
            std::mem::swap(&mut e.base, merged);
            e.overlay.clear();
        }
        Ok(())
    }

    /// Insert an entry, evicting least-recently-used entries while the
    /// total link-slot budget or the entry cap is exceeded.
    fn insert(&mut self, e: Entry) {
        self.entries.push(e);
        loop {
            let total: usize = self.entries.iter().map(|e| e.link_count).sum();
            if self.entries.len() <= 1
                || (total <= self.max_cached_links && self.entries.len() <= self.max_entries)
            {
                break;
            }
            let victim = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i)
                .expect("entries non-empty");
            self.entries.swap_remove(victim);
        }
    }
}

/// The boundary-scan verdict for one link under the current pass state:
/// `Some(cost_bits)` if it is a boundary edge (finite weight, both
/// endpoints labeled, labels differ), else `None`.
#[inline]
fn candidate_bits(voronoi: &DijkstraScratch, link: &Link, w: f64) -> Option<u64> {
    if !w.is_finite() {
        return None;
    }
    let (lu, lv) = (
        voronoi.voronoi_label(link.a)?,
        voronoi.voronoi_label(link.b)?,
    );
    if lu == lv {
        return None;
    }
    let cost = voronoi.cost_to(link.a) + w + voronoi.cost_to(link.b);
    Some(cost.to_bits())
}

#[inline]
fn pack(cost_bits: u64, l: LinkId) -> u128 {
    (u128::from(cost_bits) << 64) | u128::from(l.0)
}

#[inline]
fn unpack(packed: u128) -> (u64, LinkId) {
    ((packed >> 64) as u64, LinkId((packed & 0xFFFF_FFFF) as u32))
}

/// Kruskal over the merged candidate list, boundary expansion, and the
/// shared KMB tail — exactly `sparse_inner`'s steps 3–5 against the
/// entry's pass state.
fn assemble(topo: &Topology, e: &mut Entry, pool: &mut ScratchPool) -> Result<CachedOutcome> {
    for t in e.all.iter().skip(1) {
        if !e.root_spt.reachable(*t) {
            return Ok(CachedOutcome::Disconnected {
                from: e.root,
                to: *t,
            });
        }
    }
    let mut bufs = pool.take_steiner_bufs();
    let result = assemble_inner(topo, e, &mut bufs);
    pool.give_back_steiner_bufs(bufs);
    result.map(CachedOutcome::Tree)
}

fn assemble_inner(
    topo: &Topology,
    e: &mut Entry,
    bufs: &mut crate::algo::scratch::SteinerBufs,
) -> Result<SteinerTree> {
    let uf = &mut bufs.prune.uf;
    uf.reset(e.all.len());
    let boundary = &mut bufs.boundary;
    boundary.clear();
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let packed = match (e.base.get(i), e.overlay.get(j)) {
            (Some(&a), Some(&b)) => {
                if a <= b {
                    i += 1;
                    a
                } else {
                    j += 1;
                    b
                }
            }
            (Some(&a), None) => {
                i += 1;
                a
            }
            (None, Some(&b)) => {
                j += 1;
                b
            }
            (None, None) => break,
        };
        let (bits, l) = unpack(packed);
        if e.entry_of[l.index()] != bits {
            continue; // stale candidate superseded by a patch
        }
        let link = topo.link(l)?;
        let (lu, lv) = (
            e.voronoi.voronoi_label(link.a).expect("boundary label") as usize,
            e.voronoi.voronoi_label(link.b).expect("boundary label") as usize,
        );
        if uf.union(lu, lv) {
            boundary.push(l);
            if uf.components() == 1 {
                break;
            }
        }
    }

    bufs.sub_links.clear();
    for i in 0..bufs.boundary.len() {
        let l = bufs.boundary[i];
        let link = topo.link(l)?;
        bufs.sub_links.push(l);
        e.voronoi.append_path_links(link.a, &mut bufs.sub_links)?;
        e.voronoi.append_path_links(link.b, &mut bufs.sub_links)?;
    }
    bufs.sub_links.sort_unstable();
    bufs.sub_links.dedup();

    let tree_links = best_of_candidate_and_spt_union(topo, &e.all, &e.weights, &e.root_spt, bufs)?;
    root_and_assemble(
        topo,
        e.root,
        &e.all,
        &e.terminals,
        tree_links,
        &e.weights,
        bufs,
    )
}

/// Clone the cached outcome into the caller-facing `Result`.
fn materialise(out: &CachedOutcome) -> Result<SteinerTree> {
    match out {
        CachedOutcome::Tree(t) => Ok(t.clone()),
        CachedOutcome::Disconnected { from, to } => Err(crate::TopoError::Disconnected {
            from: *from,
            to: *to,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::steiner_tree_sparse;
    use crate::builders;

    /// Deterministic positive weight keyed by (link, round); a few links
    /// disabled per round.
    fn weight_at(l: u32, round: u64) -> f64 {
        let h = (u64::from(l) + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(round.wrapping_mul(0x2545_f491_4f6c_dd1d));
        let h = (h ^ (h >> 31)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if h % 17 == 0 {
            f64::INFINITY
        } else {
            0.25 + (h % 997) as f64 / 89.0
        }
    }

    /// Drive the cache across rounds of weight churn; every round's tree
    /// must equal the from-scratch sparse construction's.
    #[test]
    fn cached_solves_match_from_scratch_across_deltas() {
        let t = builders::random_connected(60, 0.12, 5, 100.0);
        let n_links = t.link_count() as u32;
        let root = NodeId(0);
        let terminals: Vec<NodeId> = [7u32, 13, 22, 31, 40, 55].map(NodeId).to_vec();
        let mut cache = ClosureCache::new();
        let mut pool = ScratchPool::new();
        // stamps[l] moves whenever the weight regime round touches l.
        let mut stamps: Vec<u64> = vec![0; n_links as usize];
        let mut round_of: Vec<u64> = vec![0; n_links as usize];
        for round in 0..12u64 {
            if round > 0 {
                // Touch a few links per round; every fourth round is pure
                // stamp churn with no real weight change, exercising the
                // stamp-moved-weight-same hit path.
                let real = round % 4 != 1;
                for l in 0..n_links {
                    if (l as u64 + round).is_multiple_of(11) {
                        stamps[l as usize] += 1;
                        if real {
                            round_of[l as usize] = round;
                        }
                    }
                }
            }
            let weight = |link: &Link| weight_at(link.id.0, round_of[link.id.index()]);
            let got = cache
                .solve_in(
                    &t,
                    root,
                    &terminals,
                    &[42],
                    |l| [stamps[l.index()], 0],
                    weight,
                    &mut pool,
                )
                .unwrap();
            let want = steiner_tree_sparse(&t, root, &terminals, weight).unwrap();
            assert_eq!(got, want, "round {round}");
        }
        let s = cache.stats();
        assert_eq!(s.decisions(), 12);
        assert!(s.hits > 0, "unchanged rounds must hit: {s:?}");
        assert!(s.repairs > 0, "small deltas must repair: {s:?}");
        assert_eq!(s.full_solves + s.hits + s.repairs, 12);
    }

    #[test]
    fn oversized_deltas_fall_back_to_full_solves_and_still_match() {
        let t = builders::random_connected(40, 0.2, 3, 100.0);
        let root = NodeId(1);
        let terminals: Vec<NodeId> = [4u32, 9, 17, 25, 33].map(NodeId).to_vec();
        let mut cache = ClosureCache::new();
        cache.set_max_changed_links(0); // every delta goes straight to full
        let mut pool = ScratchPool::new();
        for round in 0..3u64 {
            let weight = |link: &Link| weight_at(link.id.0, round);
            let got = cache
                .solve_in(
                    &t,
                    root,
                    &terminals,
                    &[7],
                    |l| [round * 1000 + u64::from(l.0), 0],
                    weight,
                    &mut pool,
                )
                .unwrap();
            let want = steiner_tree_sparse(&t, root, &terminals, weight).unwrap();
            assert_eq!(got, want, "round {round}");
        }
        assert_eq!(cache.stats().full_solves, 3);
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn disconnection_verdicts_cache_and_match() {
        let mut t = builders::nsfnet();
        let island = t.add_node(crate::NodeKind::Server, "island");
        let mut cache = ClosureCache::new();
        let mut pool = ScratchPool::new();
        for _ in 0..2 {
            let got = cache.solve_in(
                &t,
                NodeId(0),
                &[island],
                &[],
                |_| [0, 0],
                crate::algo::length_weight,
                &mut pool,
            );
            match got {
                Err(crate::TopoError::Disconnected { from, to }) => {
                    assert_eq!((from, to), (NodeId(0), island));
                }
                other => panic!("expected disconnection, got {other:?}"),
            }
        }
        assert_eq!(cache.stats().hits, 1, "second verdict must be a hit");
    }

    #[test]
    fn distinct_regimes_and_keys_do_not_collide() {
        let t = builders::nsfnet();
        let root = NodeId(0);
        let terminals = [NodeId(5), NodeId(9), NodeId(12)];
        let mut cache = ClosureCache::new();
        let mut pool = ScratchPool::new();
        let flat = cache
            .solve_in(&t, root, &terminals, &[1], |_| [0, 0], |_| 1.0, &mut pool)
            .unwrap();
        let lengths = cache
            .solve_in(
                &t,
                root,
                &terminals,
                &[2],
                |_| [0, 0],
                crate::algo::length_weight,
                &mut pool,
            )
            .unwrap();
        assert_eq!(
            flat,
            steiner_tree_sparse(&t, root, &terminals, |_| 1.0).unwrap()
        );
        assert_eq!(
            lengths,
            steiner_tree_sparse(&t, root, &terminals, crate::algo::length_weight).unwrap()
        );
        assert_eq!(cache.stats().full_solves, 2, "two keys, two entries");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn link_budget_evicts_least_recently_used() {
        let t = builders::nsfnet();
        let mut cache = ClosureCache::new();
        // Room for roughly two NSFNET-sized entries.
        cache.set_link_budget(2 * t.link_count());
        let mut pool = ScratchPool::new();
        for (i, r) in [3u32, 4, 5, 6].iter().enumerate() {
            cache
                .solve_in(
                    &t,
                    NodeId(*r),
                    &[NodeId(9), NodeId(12)],
                    &[i as u64],
                    |_| [0, 0],
                    crate::algo::length_weight,
                    &mut pool,
                )
                .unwrap();
        }
        assert!(cache.len() <= 2, "budget must bound live entries");
        assert_eq!(cache.stats().full_solves, 4);
    }
}
