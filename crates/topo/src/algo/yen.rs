//! Yen's k-shortest loopless paths.
//!
//! Used by the fixed SPFF baseline when the first-choice shortest path has no
//! spare wavelength: the scheduler walks the k-shortest list until first-fit
//! succeeds, mirroring classic RWA practice.

use crate::algo::dijkstra::shortest_path;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::path::Path;
use crate::Result;
use crate::Topology;
use std::collections::BTreeSet;

/// Compute up to `k` shortest loopless paths from `from` to `to`.
///
/// Paths are returned in non-decreasing cost order. Fewer than `k` paths are
/// returned when the graph does not contain `k` distinct loopless paths.
///
/// # Errors
/// Propagates [`crate::TopoError::Disconnected`] only if *no* path exists;
/// an empty `k` yields an empty vector.
pub fn k_shortest_paths(
    topo: &Topology,
    from: NodeId,
    to: NodeId,
    k: usize,
    weight: impl Fn(&Link) -> f64,
) -> Result<Vec<Path>> {
    if k == 0 {
        return Ok(Vec::new());
    }
    let first = shortest_path(topo, from, to, &weight)?;
    let mut result = vec![first];
    // Candidate set ordered by (cost, path) for determinism.
    let mut candidates: Vec<(f64, Path)> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("at least one accepted path");
        // Each node of the previous path (except the final node) is a spur.
        for spur_idx in 0..last.nodes.len().saturating_sub(1) {
            let spur_node = last.nodes[spur_idx];
            let root_nodes = &last.nodes[..=spur_idx];
            let root_links = &last.links[..spur_idx];

            // Links to remove: next-hop links of every accepted path sharing
            // this root prefix.
            let mut banned_links: BTreeSet<LinkId> = BTreeSet::new();
            for p in &result {
                if p.nodes.len() > spur_idx && p.nodes[..=spur_idx] == *root_nodes {
                    if let Some(l) = p.links.get(spur_idx) {
                        banned_links.insert(*l);
                    }
                }
            }
            // Nodes of the root path (except the spur) must not be revisited.
            let banned_nodes: BTreeSet<NodeId> = root_nodes[..spur_idx].iter().copied().collect();

            let spur = shortest_path(topo, spur_node, to, |l: &Link| {
                if banned_links.contains(&l.id)
                    || banned_nodes.contains(&l.a)
                    || banned_nodes.contains(&l.b)
                {
                    f64::INFINITY
                } else {
                    weight(l)
                }
            });
            let Ok(spur_path) = spur else { continue };

            let total = Path::new(root_nodes.to_vec(), root_links.to_vec())
                .expect("root prefix is consistent")
                .join(&spur_path)
                .expect("spur starts at root end");
            if !total.is_node_simple() {
                continue;
            }
            let cost = path_cost(topo, &total, &weight)?;
            if !result.contains(&total) && !candidates.iter().any(|(_, p)| *p == total) {
                candidates.push((cost, total));
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|(ca, pa), (cb, pb)| {
            ca.partial_cmp(cb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| pa.nodes.cmp(&pb.nodes))
        });
        result.push(candidates.remove(0).1);
    }
    Ok(result)
}

/// Total cost of `path` under `weight`.
pub fn path_cost(topo: &Topology, path: &Path, weight: impl Fn(&Link) -> f64) -> Result<f64> {
    let mut total = 0.0;
    for l in &path.links {
        total += weight(topo.link(*l)?);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::length_weight;
    use crate::builders;
    use crate::node::NodeKind;

    fn diamond() -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::IpRouter, "a");
        let b = t.add_node(NodeKind::IpRouter, "b");
        let c = t.add_node(NodeKind::IpRouter, "c");
        let d = t.add_node(NodeKind::IpRouter, "d");
        t.add_link(a, b, 1.0, 10.0).unwrap();
        t.add_link(b, d, 1.0, 10.0).unwrap();
        t.add_link(a, c, 2.0, 10.0).unwrap();
        t.add_link(c, d, 2.0, 10.0).unwrap();
        t.add_link(a, d, 10.0, 10.0).unwrap();
        (t, a, d)
    }

    #[test]
    fn finds_paths_in_cost_order() {
        let (t, a, d) = diamond();
        let ps = k_shortest_paths(&t, a, d, 3, length_weight).unwrap();
        assert_eq!(ps.len(), 3);
        let costs: Vec<f64> = ps
            .iter()
            .map(|p| path_cost(&t, p, length_weight).unwrap())
            .collect();
        assert!((costs[0] - 2.0).abs() < 1e-9);
        assert!((costs[1] - 4.0).abs() < 1e-9);
        assert!((costs[2] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn paths_are_distinct_and_loopless() {
        let (t, a, d) = diamond();
        let ps = k_shortest_paths(&t, a, d, 3, length_weight).unwrap();
        for (i, p) in ps.iter().enumerate() {
            assert!(p.is_node_simple());
            p.validate(&t).unwrap();
            for q in &ps[i + 1..] {
                assert_ne!(p, q);
            }
        }
    }

    #[test]
    fn stops_when_graph_exhausted() {
        let (t, a, d) = diamond();
        let ps = k_shortest_paths(&t, a, d, 10, length_weight).unwrap();
        assert_eq!(ps.len(), 3, "diamond has exactly 3 loopless a->d paths");
    }

    #[test]
    fn k_zero_is_empty() {
        let (t, a, d) = diamond();
        assert!(k_shortest_paths(&t, a, d, 0, length_weight)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn no_path_errors() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::Server, "b");
        assert!(k_shortest_paths(&t, a, b, 2, length_weight).is_err());
    }

    #[test]
    fn works_on_nsfnet_with_many_k() {
        let t = builders::nsfnet();
        let ps = k_shortest_paths(&t, NodeId(0), NodeId(10), 5, length_weight).unwrap();
        assert!(ps.len() >= 3);
        let mut prev = 0.0;
        for p in &ps {
            let c = path_cost(&t, p, length_weight).unwrap();
            assert!(c + 1e-9 >= prev, "costs must be non-decreasing");
            prev = c;
        }
    }
}
