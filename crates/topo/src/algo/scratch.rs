//! Reusable, generation-stamped Dijkstra state.
//!
//! The flexible scheduler re-solves Steiner trees for every arriving task,
//! and each Steiner construction runs one Dijkstra per terminal — so at
//! metro scale the allocator was being hit with fresh `dist`/`parent`/
//! `visited` vectors hundreds of times per scheduling decision. A
//! [`DijkstraScratch`] keeps those arrays alive between runs and resets
//! them in O(1) by bumping a generation counter: a slot's contents are
//! valid only when its stamp equals the current generation, so no clearing
//! pass is needed. A [`ScratchPool`] recycles scratches across calls that
//! need several simultaneously live shortest-path trees (the Steiner metric
//! closure holds one per terminal).
//!
//! The search itself is exactly the algorithm in [`crate::algo::dijkstra`]
//! — same tie-breaking (cost ascending, then node id; equal-cost parent
//! replaced only by a lower link id), same error behaviour — which the
//! equivalence tests below and the proptests in `tests/proptests.rs` pin
//! down. [`crate::algo::shortest_path_tree`] is implemented on top of this
//! type, so there is a single Dijkstra implementation in the crate.

use crate::error::TopoError;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::path::Path;
use crate::Result;
use crate::Topology;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Priority-queue entry ordered by (cost asc, node id asc) for determinism.
///
/// The cost is stored as its IEEE-754 bit pattern: path costs are always
/// non-negative (negative weights are rejected, and `x + 0.0` can never
/// produce `-0.0` from non-negative addends), and for non-negative floats
/// the bit patterns order exactly like the values — so the heap compares
/// integers instead of calling `partial_cmp`.
#[derive(Debug, PartialEq, Eq)]
pub(crate) struct QueueEntry {
    pub(crate) cost_bits: u64,
    pub(crate) node: NodeId,
}

impl QueueEntry {
    #[inline]
    fn new(cost: f64, node: NodeId) -> Self {
        QueueEntry {
            cost_bits: cost.to_bits(),
            node,
        }
    }

    #[inline]
    fn cost(&self) -> f64 {
        f64::from_bits(self.cost_bits)
    }
}

impl Ord for QueueEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert so the smallest cost pops first.
        other
            .cost_bits
            .cmp(&self.cost_bits)
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Highest admissible bucket index for the delta-stepping pass: ~2.6e5
/// buckets (a few MiB of empty vectors at worst). A weight spread extreme
/// enough to overflow this falls back to the heap pass.
const MAX_BUCKET: usize = 1 << 18;

/// Reusable single-source shortest-path state.
///
/// After [`DijkstraScratch::run`], the scratch *is* the shortest-path tree:
/// query it with [`cost_to`](DijkstraScratch::cost_to) /
/// [`parent_of`](DijkstraScratch::parent_of) /
/// [`path_to`](DijkstraScratch::path_to). Running again invalidates the
/// previous results in O(1) (generation bump) and reuses every allocation.
#[derive(Debug, Default)]
pub struct DijkstraScratch {
    dist: Vec<f64>,
    parent: Vec<Option<(NodeId, LinkId)>>,
    /// Voronoi label: index into the run's source list of the source whose
    /// region node `i` fell into. Propagated with the parent pointer, so a
    /// node's label always names the source its parent chain terminates at.
    label: Vec<u32>,
    /// Slot `i` of `dist`/`parent`/`label` is valid iff
    /// `touched[i] == generation`.
    touched: Vec<u32>,
    /// Node `i` is settled iff `settled[i] == generation`.
    settled: Vec<u32>,
    /// Node `i` is an early-exit target iff `target[i] == generation`.
    target: Vec<u32>,
    /// Links whose weight the current run consulted, in consultation
    /// order — the run's *read region*. Appended as a side effect of edge
    /// relaxation, deduplicated in O(1) via `consulted_stamp`, so recording
    /// costs one stamp compare per edge visit and no allocation in steady
    /// state.
    consulted: Vec<LinkId>,
    /// Link `l` is already in `consulted` iff
    /// `consulted_stamp[l] == generation`.
    consulted_stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<QueueEntry>,
    source: Option<NodeId>,
    /// Repair/bucket work marks: node `i` is marked iff
    /// `mark[i] == mark_epoch`.
    mark: Vec<u32>,
    mark_epoch: u32,
    /// Repair work list (orphaned-subtree BFS frontier).
    work: Vec<NodeId>,
    /// Bucket queue for the delta-stepping pass; inner vectors keep their
    /// capacity across runs.
    buckets: Vec<Vec<NodeId>>,
    /// Node `i` is queued in bucket `b` iff
    /// `queued[i] == mark_epoch << 32 | b` (epoch ≥ 1, so 0 means idle).
    queued: Vec<u64>,
    /// Reached-node list of the last bucketed run, for the post-hoc
    /// canonical parent/label derivation.
    order: Vec<NodeId>,
}

impl DijkstraScratch {
    /// Fresh scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The source of the last completed run, if any.
    pub fn source(&self) -> Option<NodeId> {
        self.source
    }

    fn begin(&mut self, n: usize, links: usize) {
        if self.dist.len() < n {
            self.dist.resize(n, f64::INFINITY);
            self.parent.resize(n, None);
            self.label.resize(n, 0);
            self.touched.resize(n, 0);
            self.settled.resize(n, 0);
            self.target.resize(n, 0);
        }
        if self.consulted_stamp.len() < links {
            self.consulted_stamp.resize(links, 0);
        }
        if self.generation == u32::MAX {
            // Generation wrap: invalidate every stamp once, then restart.
            self.touched.fill(0);
            self.settled.fill(0);
            self.target.fill(0);
            self.consulted_stamp.fill(0);
            self.generation = 0;
        }
        self.generation += 1;
        self.heap.clear();
        self.consulted.clear();
        self.source = None;
    }

    #[inline]
    fn is_settled(&self, n: NodeId) -> bool {
        self.settled[n.index()] == self.generation
    }

    #[inline]
    fn dist_of(&self, n: NodeId) -> f64 {
        if self.touched[n.index()] == self.generation {
            self.dist[n.index()]
        } else {
            f64::INFINITY
        }
    }

    #[inline]
    fn parent_slot(&self, n: NodeId) -> Option<(NodeId, LinkId)> {
        if self.touched[n.index()] == self.generation {
            self.parent[n.index()]
        } else {
            None
        }
    }

    /// Run Dijkstra from `source` under `weight`, reusing the buffers.
    ///
    /// Semantics match [`crate::algo::shortest_path_tree`]: weights must be
    /// non-negative (`f64::INFINITY` disables a link), NaN or negative
    /// weights yield [`TopoError::BadWeight`], tie-breaks are by ascending
    /// link id so equal-cost runs are deterministic.
    pub fn run(
        &mut self,
        topo: &Topology,
        source: NodeId,
        weight: impl Fn(&Link) -> f64,
    ) -> Result<()> {
        self.run_core(topo, &[source], |id| Ok(weight(topo.link(id)?)), None)
    }

    /// Like [`run`](DijkstraScratch::run), but with per-link weights
    /// precomputed into an id-indexed slice (one weight evaluation per link
    /// instead of one per edge visit) and optional early exit: when
    /// `targets` is given the search stops as soon as every target is
    /// settled. Settled distances and parents are final in Dijkstra, so
    /// costs and reconstructed paths to the targets are identical to a full
    /// run — only unreached non-target state differs.
    pub fn run_with_weights(
        &mut self,
        topo: &Topology,
        source: NodeId,
        weights: &[f64],
        targets: Option<&[NodeId]>,
    ) -> Result<()> {
        self.run_core(
            topo,
            &[source],
            |id| Ok(weights.get(id.index()).copied().unwrap_or(f64::INFINITY)),
            targets,
        )
    }

    /// Multi-source variant of
    /// [`run_with_weights`](DijkstraScratch::run_with_weights): every node
    /// in `sources` starts at distance zero, so the result is the cheapest
    /// path from the source *set* to every reached node — the
    /// frontier-restricted metric-closure search incremental tree repair
    /// uses to re-attach orphaned terminals to a surviving tree fragment.
    /// Parent chains terminate (`parent_of` = `None`) at whichever source
    /// is nearest; ties break exactly as in the single-source search (cost
    /// ascending, then node id, equal-cost parent replaced only by a lower
    /// link id), so the attachment forest is deterministic. Each reached
    /// node also records the *index* of its nearest source
    /// ([`voronoi_label`](DijkstraScratch::voronoi_label)), making the run
    /// double as the Voronoi-region pass of the Mehlhorn sparsified metric
    /// closure ([`crate::algo::mehlhorn`]).
    pub fn run_multi_with_weights(
        &mut self,
        topo: &Topology,
        sources: &[NodeId],
        weights: &[f64],
        targets: Option<&[NodeId]>,
    ) -> Result<()> {
        if sources.is_empty() {
            return Err(TopoError::EmptyInput("dijkstra sources"));
        }
        self.run_core(
            topo,
            sources,
            |id| Ok(weights.get(id.index()).copied().unwrap_or(f64::INFINITY)),
            targets,
        )
    }

    /// [`run_multi_with_weights`](DijkstraScratch::run_multi_with_weights)
    /// with an on-demand weight function instead of a precomputed array.
    /// With early-exit targets close to the source set, most links are
    /// never visited, so skipping the up-front whole-topology weight pass
    /// is a net win — each visited edge evaluates the function at most
    /// twice.
    pub fn run_multi(
        &mut self,
        topo: &Topology,
        sources: &[NodeId],
        weight: impl Fn(LinkId) -> f64,
        targets: Option<&[NodeId]>,
    ) -> Result<()> {
        if sources.is_empty() {
            return Err(TopoError::EmptyInput("dijkstra sources"));
        }
        self.run_core(topo, sources, |id| Ok(weight(id)), targets)
    }

    fn run_core(
        &mut self,
        topo: &Topology,
        sources: &[NodeId],
        weight_of: impl Fn(LinkId) -> Result<f64>,
        targets: Option<&[NodeId]>,
    ) -> Result<()> {
        for s in sources {
            topo.node(*s)?;
        }
        self.begin(topo.node_count(), topo.link_count());
        let generation = self.generation;
        let mut remaining = 0usize;
        if let Some(targets) = targets {
            for t in targets {
                topo.node(*t)?;
                if self.target[t.index()] != generation {
                    self.target[t.index()] = generation;
                    remaining += 1;
                }
            }
        }
        for (idx, s) in sources.iter().enumerate() {
            self.dist[s.index()] = 0.0;
            self.parent[s.index()] = None;
            self.label[s.index()] = idx as u32;
            self.touched[s.index()] = generation;
            self.heap.push(QueueEntry::new(0.0, *s));
        }

        while let Some(entry) = self.heap.pop() {
            let (cost, node) = (entry.cost(), entry.node);
            if self.is_settled(node) {
                continue;
            }
            self.settled[node.index()] = generation;
            if targets.is_some() && self.target[node.index()] == generation {
                remaining -= 1;
                if remaining == 0 {
                    break;
                }
            }
            for &(nbr, link_id) in topo.neighbors(node)? {
                if self.is_settled(nbr) {
                    // Safe to skip recording: a settled node's distance and
                    // parent are final in Dijkstra, and any relaxation from
                    // `node` (cost ≥ the settled cost) through this link
                    // cannot undercut or re-tie them — so the result does
                    // not depend on this link's weight.
                    continue;
                }
                // Record the consultation *before* the infinite-weight
                // check: a disabled link that was examined and skipped is
                // still part of the read region (had it become usable, the
                // search could have gone differently).
                if self.consulted_stamp[link_id.index()] != generation {
                    self.consulted_stamp[link_id.index()] = generation;
                    self.consulted.push(link_id);
                }
                let w = weight_of(link_id)?;
                if w.is_infinite() {
                    continue; // unusable link
                }
                if w.is_nan() || w < 0.0 {
                    return Err(TopoError::BadWeight {
                        link: link_id,
                        weight: w,
                    });
                }
                let cand = cost + w;
                let cur = self.dist_of(nbr);
                let better = cand < cur
                    || (cand == cur && self.parent_slot(nbr).is_some_and(|(_, l)| link_id < l));
                if better {
                    let i = nbr.index();
                    self.dist[i] = cand;
                    self.parent[i] = Some((node, link_id));
                    self.label[i] = self.label[node.index()];
                    self.touched[i] = generation;
                    self.heap.push(QueueEntry::new(cand, nbr));
                }
            }
        }

        self.source = Some(sources[0]);
        Ok(())
    }

    /// Bump the mark epoch (with wrap handling) and size the mark array.
    fn mark_begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
        }
        if self.mark_epoch == u32::MAX {
            self.mark.fill(0);
            self.queued.fill(0);
            self.mark_epoch = 0;
        }
        self.mark_epoch += 1;
    }

    /// Deterministic bucketed (delta-stepping-style) variant of
    /// [`run_multi_with_weights`](DijkstraScratch::run_multi_with_weights)
    /// for *full* (no early exit) passes over large fabrics.
    ///
    /// Distances are computed with a bucket queue of width `δ` = mean
    /// finite weight — each bucket drains to a fixpoint before the next
    /// opens, so the pass touches memory bucket-by-bucket and, unlike the
    /// binary heap, the per-bucket drain is order-insensitive and ready to
    /// fan out across cores. Parents and labels are then derived *post
    /// hoc* in ascending `(dist, node)` order by picking, for every
    /// reached non-source node, the minimum link id among its tight
    /// in-edges (`dist(u) + w == dist(v)` in f64 arithmetic). With
    /// strictly positive weights that canonical choice is exactly what the
    /// heap pass's tie-break rule (equal-cost parent replaced only by a
    /// lower link id) converges to, so the result is **bit-identical** to
    /// `run_multi_with_weights` — the equivalence tests and
    /// `tests/proptests.rs` pin this.
    ///
    /// Degenerate inputs (a non-positive or NaN finite weight, no finite
    /// weight at all, or a bucket index overflowing the cap) fall back to
    /// the heap pass, which owns the error behaviour. The bucketed pass
    /// does not maintain the `settled` stamps; like every full pass it is
    /// queried only through `dist`/`parent`/`label` accessors afterwards.
    pub fn run_multi_bucketed_with_weights(
        &mut self,
        topo: &Topology,
        sources: &[NodeId],
        weights: &[f64],
    ) -> Result<()> {
        if sources.is_empty() {
            return Err(TopoError::EmptyInput("dijkstra sources"));
        }
        let mut sum = 0.0;
        let mut cnt = 0usize;
        let mut degenerate = false;
        for &w in weights.iter().take(topo.link_count()) {
            if w.is_finite() {
                if w <= 0.0 {
                    degenerate = true;
                    break;
                }
                sum += w;
                cnt += 1;
            } else if w.is_nan() {
                degenerate = true;
                break;
            }
        }
        if degenerate || cnt == 0 {
            return self.run_multi_with_weights(topo, sources, weights, None);
        }
        let delta = sum / cnt as f64;
        for s in sources {
            topo.node(*s)?;
        }
        self.begin(topo.node_count(), topo.link_count());
        let generation = self.generation;
        let n = topo.node_count();
        if self.queued.len() < n {
            self.queued.resize(n, 0);
        }
        self.mark_begin(n);
        let epoch = u64::from(self.mark_epoch);
        for b in &mut self.buckets {
            b.clear();
        }
        if self.buckets.is_empty() {
            self.buckets.push(Vec::new());
        }
        let mut order = std::mem::take(&mut self.order);
        order.clear();
        for (idx, s) in sources.iter().enumerate() {
            let i = s.index();
            self.dist[i] = 0.0;
            self.parent[i] = None;
            self.label[i] = idx as u32;
            if self.touched[i] != generation {
                self.touched[i] = generation;
                order.push(*s);
            }
            let tag = epoch << 32;
            if self.queued[i] != tag {
                self.queued[i] = tag;
                self.buckets[0].push(*s);
            }
        }

        let mut cur = 0usize;
        let mut overflow = false;
        'outer: while cur < self.buckets.len() {
            while let Some(node) = self.buckets[cur].pop() {
                self.queued[node.index()] = 0;
                let base = self.dist[node.index()];
                for &(nbr, link) in topo.neighbors(node)? {
                    if self.consulted_stamp[link.index()] != generation {
                        self.consulted_stamp[link.index()] = generation;
                        self.consulted.push(link);
                    }
                    let w = weights.get(link.index()).copied().unwrap_or(f64::INFINITY);
                    if w.is_infinite() {
                        continue;
                    }
                    let cand = base + w;
                    if cand < self.dist_of(nbr) {
                        let i = nbr.index();
                        if self.touched[i] != generation {
                            self.touched[i] = generation;
                            order.push(nbr);
                        }
                        self.dist[i] = cand;
                        // A node improved while its bucket drains re-enters
                        // the *current* bucket, so the drain reaches the
                        // intra-bucket fixpoint before moving on.
                        let b = ((cand / delta) as usize).max(cur);
                        if b > MAX_BUCKET {
                            overflow = true;
                            break 'outer;
                        }
                        if b >= self.buckets.len() {
                            self.buckets.resize_with(b + 1, Vec::new);
                        }
                        let tag = epoch << 32 | b as u64;
                        if self.queued[i] != tag {
                            self.queued[i] = tag;
                            self.buckets[b].push(nbr);
                        }
                    }
                }
            }
            cur += 1;
        }
        if overflow {
            self.order = order;
            return self.run_multi_with_weights(topo, sources, weights, None);
        }

        // Canonical parent/label derivation: ascending (dist, node) order
        // guarantees every node's chosen parent already carries its final
        // label (strictly positive weights ⇒ the parent is strictly
        // closer).
        order.sort_unstable_by(|a, b| {
            (self.dist[a.index()].to_bits(), a.0).cmp(&(self.dist[b.index()].to_bits(), b.0))
        });
        for &v in &order {
            let dv = self.dist[v.index()];
            if dv == 0.0 {
                continue; // a source: parent None, label already seeded
            }
            let mut best: Option<(NodeId, LinkId)> = None;
            for &(u, l) in topo.neighbors(v)? {
                let w = weights.get(l.index()).copied().unwrap_or(f64::INFINITY);
                if w.is_infinite() {
                    continue;
                }
                if self.touched[u.index()] == generation
                    && self.dist[u.index()] + w == dv
                    && best.is_none_or(|(_, bl)| l < bl)
                {
                    best = Some((u, l));
                }
            }
            let (u, l) = best.expect("reached non-source node has a tight predecessor");
            self.parent[v.index()] = Some((u, l));
            self.label[v.index()] = self.label[u.index()];
        }
        self.order = order;
        self.source = Some(sources[0]);
        Ok(())
    }

    /// Incrementally repair the last full multi-source run after small
    /// per-link weight deltas, instead of re-running it from scratch.
    ///
    /// `new_weights` is the *current* per-link weight array and `changed`
    /// lists each moved link with its **previous** weight (so callers can
    /// update their weight array in place and still hand the repair the
    /// before/after view without cloning an O(E) slice). The repair
    /// (1) collects the parent-pointer subtrees orphaned by weight
    /// *increases* — if that affected region exceeds `max_affected` nodes
    /// it returns `Ok(false)` **without mutating any state**, and the
    /// caller falls back to a full pass; (2) invalidates the region (those
    /// nodes read as unreached, exactly like a from-scratch run that never
    /// relaxed them); (3) seeds a flood from every valid→orphan edge and
    /// both directions of every changed link; (4) floods to a fixpoint
    /// with the same relaxation rule as the full pass (equal-cost parent
    /// replaced only by a lower link id) plus a label cascade that
    /// re-propagates a rewritten source label through unchanged parent
    /// edges. With strictly positive weights the fixpoint is the canonical
    /// (order-independent) state, so the repaired `dist`/`parent`/`label`
    /// are **bit-identical** to a from-scratch
    /// [`run_multi_with_weights`](DijkstraScratch::run_multi_with_weights)
    /// under `new_weights` — pinned by the equivalence tests below and by
    /// `tests/proptests.rs`.
    ///
    /// Every node whose state may have changed (including invalidated
    /// ones) is appended to `touched_nodes`, deduplicated — callers use it
    /// to patch derived per-node structures. The consulted-link read
    /// region and `settled` stamps are *not* maintained by a repair;
    /// callers tracking read regions for a repaired pass must record the
    /// full link set (the boundary scan reads it anyway).
    ///
    /// Returns `Ok(true)` if the repair was applied, `Ok(false)` if the
    /// affected region was too large (state untouched) or there is no
    /// valid prior run to repair.
    pub fn repair_multi_with_weights(
        &mut self,
        topo: &Topology,
        new_weights: &[f64],
        changed: &[(LinkId, f64)],
        max_affected: usize,
        touched_nodes: &mut Vec<NodeId>,
    ) -> Result<bool> {
        let n = topo.node_count();
        if self.source.is_none() || self.touched.len() < n {
            return Ok(false);
        }
        touched_nodes.clear();
        for &(l, _) in changed {
            topo.link(l)?;
        }
        self.mark_begin(n);
        let epoch = self.mark_epoch;

        // Phase 1 (read-only): orphan roots are nodes whose parent link
        // increased; BFS their parent-pointer subtrees. Bail before any
        // mutation if the region outgrows the budget.
        let mut work = std::mem::take(&mut self.work);
        work.clear();
        for &(l, old_w) in changed {
            let new_w = new_weights.get(l.index()).copied().unwrap_or(f64::INFINITY);
            if new_w.is_nan() {
                self.work = work;
                return Err(TopoError::BadWeight {
                    link: l,
                    weight: new_w,
                });
            }
            if new_w <= old_w {
                continue; // only increases orphan anyone (NaN already rejected)
            }
            let link = topo.link(l)?;
            for (x, via) in [(link.b, link.a), (link.a, link.b)] {
                if self.mark[x.index()] != epoch && self.parent_slot(x) == Some((via, l)) {
                    self.mark[x.index()] = epoch;
                    work.push(x);
                }
            }
        }
        let mut head = 0;
        while head < work.len() {
            if work.len() > max_affected {
                self.work = work;
                return Ok(false);
            }
            let y = work[head];
            head += 1;
            for &(z, m) in topo.neighbors(y)? {
                if self.mark[z.index()] != epoch && self.parent_slot(z) == Some((y, m)) {
                    self.mark[z.index()] = epoch;
                    work.push(z);
                }
            }
        }
        if work.len() > max_affected {
            self.work = work;
            return Ok(false);
        }

        // Phase 2: invalidate the orphaned region (reads become "unreached"
        // until the flood restores them).
        let stale = self.generation.wrapping_sub(1);
        for &x in &work {
            self.touched[x.index()] = stale;
            touched_nodes.push(x);
        }

        // Phase 3: seed — every edge into the orphaned region from valid
        // state, plus both directions of every changed link.
        self.heap.clear();
        for &x in &work {
            for &(y, m) in topo.neighbors(x)? {
                let w = new_weights.get(m.index()).copied().unwrap_or(f64::INFINITY);
                self.repair_relax(x, y, m, w, touched_nodes)?;
            }
        }
        self.work = work;
        for &(l, _) in changed {
            let link = topo.link(l)?;
            let w = new_weights.get(l.index()).copied().unwrap_or(f64::INFINITY);
            self.repair_relax(link.b, link.a, l, w, touched_nodes)?;
            self.repair_relax(link.a, link.b, l, w, touched_nodes)?;
        }

        // Phase 4: flood to the canonical fixpoint.
        while let Some(entry) = self.heap.pop() {
            let (cost, node) = (entry.cost(), entry.node);
            if cost > self.dist_of(node) {
                continue; // superseded by a later improvement
            }
            for &(nbr, m) in topo.neighbors(node)? {
                let w = new_weights.get(m.index()).copied().unwrap_or(f64::INFINITY);
                self.repair_relax(nbr, node, m, w, touched_nodes)?;
            }
        }
        Ok(true)
    }

    /// One repair relaxation of `dst` through `link` from `src`, with the
    /// full pass's tie-break rule plus the label cascade.
    fn repair_relax(
        &mut self,
        dst: NodeId,
        src: NodeId,
        link: LinkId,
        w: f64,
        touched_nodes: &mut Vec<NodeId>,
    ) -> Result<()> {
        if w.is_infinite() {
            return Ok(());
        }
        if w.is_nan() || w < 0.0 {
            return Err(TopoError::BadWeight { link, weight: w });
        }
        let base = self.dist_of(src);
        if base.is_infinite() {
            return Ok(());
        }
        let cand = base + w;
        let cur = self.dist_of(dst);
        let better =
            cand < cur || (cand == cur && self.parent_slot(dst).is_some_and(|(_, l)| link < l));
        if better {
            let i = dst.index();
            self.dist[i] = cand;
            self.parent[i] = Some((src, link));
            self.label[i] = self.label[src.index()];
            self.touched[i] = self.generation;
            self.heap.push(QueueEntry::new(cand, dst));
            self.record_repair_touch(dst, touched_nodes);
        } else if cand == cur
            && self.parent_slot(dst) == Some((src, link))
            && self.label[dst.index()] != self.label[src.index()]
        {
            // Label cascade: the parent edge is unchanged but the parent's
            // label was rewritten — re-propagate without a distance change.
            self.label[dst.index()] = self.label[src.index()];
            self.heap.push(QueueEntry::new(cur, dst));
            self.record_repair_touch(dst, touched_nodes);
        }
        Ok(())
    }

    #[inline]
    fn record_repair_touch(&mut self, node: NodeId, out: &mut Vec<NodeId>) {
        let i = node.index();
        if self.mark[i] != self.mark_epoch {
            self.mark[i] = self.mark_epoch;
            out.push(node);
        }
    }

    /// Whether `n` is reachable from the last run's source.
    pub fn reachable(&self, n: NodeId) -> bool {
        n.index() < self.touched.len() && self.dist_of(n).is_finite()
    }

    /// Cost of the cheapest path to `n` (infinite if unreachable).
    pub fn cost_to(&self, n: NodeId) -> f64 {
        if n.index() < self.touched.len() {
            self.dist_of(n)
        } else {
            f64::INFINITY
        }
    }

    /// Previous hop on the cheapest path to `n` (`None` for the source and
    /// unreachable nodes).
    pub fn parent_of(&self, n: NodeId) -> Option<(NodeId, LinkId)> {
        if n.index() < self.touched.len() {
            self.parent_slot(n)
        } else {
            None
        }
    }

    /// Voronoi label of `n`: the index (into the last run's source list) of
    /// the source whose region `n` fell into — i.e. where `n`'s parent
    /// chain terminates. `None` for unreached nodes.
    ///
    /// After a run *without* early-exit targets every reached node is
    /// settled, so all labels are final. With early exit, labels are final
    /// only for settled nodes; the Mehlhorn closure's Voronoi pass
    /// therefore never early-exits.
    pub fn voronoi_label(&self, n: NodeId) -> Option<u32> {
        (n.index() < self.touched.len() && self.touched[n.index()] == self.generation)
            .then(|| self.label[n.index()])
    }

    /// The links whose weight the last run consulted — the run's *read
    /// region*, in consultation order, each link at most once. Everything
    /// the search's outcome depends on is here: re-running the same search
    /// on a topology whose weights changed only **outside** this set yields
    /// bit-identical settled distances, parents and labels (the execution
    /// trace consults state exclusively through these links).
    pub fn consulted_links(&self) -> &[LinkId] {
        &self.consulted
    }

    /// Reconstruct the cheapest path from the source to `to`.
    ///
    /// # Errors
    /// [`TopoError::Disconnected`] if `to` is unreachable.
    pub fn path_to(&self, to: NodeId) -> Result<Path> {
        let source = self.source.unwrap_or(to);
        if !self.reachable(to) {
            return Err(TopoError::Disconnected { from: source, to });
        }
        let mut nodes = vec![to];
        let mut links = Vec::new();
        let mut cur = to;
        while let Some((prev, link)) = self.parent_slot(cur) {
            nodes.push(prev);
            links.push(link);
            cur = prev;
        }
        nodes.reverse();
        links.reverse();
        Path::new(nodes, links)
    }

    /// Append the links of the cheapest source→`to` path onto `out`
    /// (allocation-free alternative to [`path_to`](DijkstraScratch::path_to)
    /// when only the link set matters; link order is `to`→source).
    ///
    /// # Errors
    /// [`TopoError::Disconnected`] if `to` is unreachable.
    pub fn append_path_links(&self, to: NodeId, out: &mut Vec<LinkId>) -> Result<()> {
        if !self.reachable(to) {
            return Err(TopoError::Disconnected {
                from: self.source.unwrap_or(to),
                to,
            });
        }
        let mut cur = to;
        while let Some((prev, link)) = self.parent_slot(cur) {
            out.push(link);
            cur = prev;
        }
        Ok(())
    }

    /// Copy the results out as a standalone [`ShortestPathTree`]
    /// (`dist`/`parent` vectors of length `n`).
    ///
    /// [`ShortestPathTree`]: crate::algo::dijkstra::ShortestPathTree
    pub(crate) fn export(&self, n: usize) -> (Vec<f64>, Vec<Option<(NodeId, LinkId)>>) {
        let mut dist = vec![f64::INFINITY; n];
        let mut parent = vec![None; n];
        for i in 0..n.min(self.touched.len()) {
            if self.touched[i] == self.generation {
                dist[i] = self.dist[i];
                parent[i] = self.parent[i];
            }
        }
        (dist, parent)
    }
}

/// Reusable flat work buffers for one Steiner-tree construction: closure
/// edges, subgraph link sets, Kruskal/prune state and rooting adjacency.
/// Everything here is cleared-and-refilled per use; pooling them removes
/// dozens of small allocations from every scheduling decision.
#[derive(Debug, Default)]
pub struct SteinerBufs {
    /// Closure edges packed as `cost_bits << 64 | i << 32 | j`: for the
    /// non-negative costs Dijkstra produces, ascending `u128` order is
    /// exactly ascending `(cost, i, j)` order, so the sort is a native
    /// integer sort.
    pub(crate) closure: Vec<u128>,
    pub(crate) closure_edges: Vec<(usize, usize)>,
    /// Boundary links the Mehlhorn closure's Kruskal selected (one per
    /// chosen sparse-closure edge).
    pub(crate) boundary: Vec<LinkId>,
    pub(crate) sub_links: Vec<LinkId>,
    pub(crate) spt_union: Vec<LinkId>,
    pub(crate) adj: Vec<(NodeId, LinkId)>,
    pub(crate) visited: Vec<bool>,
    pub(crate) prune: PruneBufs,
}

/// Work buffers for the subgraph-MST + leaf-pruning step (also reused by
/// the rooting BFS once pruning is done).
#[derive(Debug, Default)]
pub(crate) struct PruneBufs {
    pub(crate) edges: Vec<(f64, LinkId)>,
    pub(crate) uf: crate::algo::unionfind::UnionFind,
    pub(crate) mst_links: Vec<LinkId>,
    pub(crate) degree: Vec<u32>,
    pub(crate) starts: Vec<u32>,
    pub(crate) cursor: Vec<u32>,
    pub(crate) incident: Vec<u32>,
    pub(crate) keep_mask: Vec<bool>,
    pub(crate) alive: Vec<bool>,
    pub(crate) queue: Vec<NodeId>,
}

/// Reusable node-indexed work arrays for tree surgery (the incremental
/// repair's detach/prune/re-attach passes). Contents are unspecified
/// between uses; every user clears and resizes what it fills. Public
/// fields: the consumer (the scheduler's repair module) drives the
/// algorithm, this type only recycles the allocations.
#[derive(Debug, Default)]
pub struct TreeBufs {
    /// Membership mask (e.g. "still attached to the root").
    pub mask: Vec<bool>,
    /// Per-node counters (e.g. surviving child counts).
    pub counts: Vec<u32>,
    /// Second membership mask (e.g. "must not be pruned").
    pub keep: Vec<bool>,
    /// Work queue / stack of nodes.
    pub queue: Vec<NodeId>,
    /// Node list (e.g. multi-source search sources).
    pub nodes: Vec<NodeId>,
}

/// An accumulating, generation-stamped set of consulted links: the *read
/// region* of one whole decision (which may span many searches over many
/// scratches). [`ScratchPool`] owns one; multi-search constructions
/// ([`crate::algo::steiner_tree_in`], [`crate::algo::steiner_tree_sparse_in`],
/// tree repair) absorb each completed search's
/// [`DijkstraScratch::consulted_links`] into it, so a caller that resets
/// the log before a decision reads the decision's full read region off the
/// pool afterwards. Recording is O(1) amortised per link (stamp compare +
/// push) and allocation-free in steady state.
#[derive(Debug)]
pub struct ReadLog {
    /// Link `l` is in `links` iff `stamp[l] == epoch`.
    stamp: Vec<u32>,
    epoch: u32,
    links: Vec<LinkId>,
}

impl Default for ReadLog {
    fn default() -> Self {
        // Epoch starts at 1 so zero-initialised stamps mean "not recorded".
        ReadLog {
            stamp: Vec::new(),
            epoch: 1,
            links: Vec::new(),
        }
    }
}

impl ReadLog {
    /// Start a fresh read region (O(1): epoch bump + list clear).
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.links.clear();
    }

    /// Record one consulted link.
    pub fn record(&mut self, link: LinkId) {
        if self.stamp.len() <= link.index() {
            self.stamp.resize(link.index() + 1, 0);
        }
        if self.stamp[link.index()] != self.epoch {
            self.stamp[link.index()] = self.epoch;
            self.links.push(link);
        }
    }

    /// Record every link of a `link_count`-link topology — the coarse
    /// "this decision read everything" region (the Mehlhorn closure's
    /// boundary scan walks the whole edge list, so its read region is the
    /// full link set by construction).
    pub fn record_all(&mut self, link_count: usize) {
        for l in 0..link_count as u32 {
            self.record(LinkId(l));
        }
    }

    /// Absorb a completed search's consulted set.
    pub fn absorb(&mut self, scratch: &DijkstraScratch) {
        for l in scratch.consulted_links() {
            self.record(*l);
        }
    }

    /// The recorded read region since the last [`reset`](ReadLog::reset),
    /// in first-consultation order, each link at most once.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }
}

/// A recycling pool of [`DijkstraScratch`]es, per-link weight caches and
/// [`SteinerBufs`].
///
/// Callers that need several simultaneously live shortest-path trees (the
/// Steiner metric closure keeps one per terminal) take scratches out, use
/// them, and give them back; steady-state scheduling then allocates
/// nothing. The pool is deliberately dumb — LIFO free lists — so taking
/// and returning is branch-light.
#[derive(Debug, Default)]
pub struct ScratchPool {
    free: Vec<DijkstraScratch>,
    weight_buffers: Vec<Vec<f64>>,
    steiner_bufs: Vec<SteinerBufs>,
    tree_bufs: Vec<TreeBufs>,
    read_log: ReadLog,
    closure: Option<crate::algo::closure::ClosureCache>,
}

impl ScratchPool {
    /// Empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of idle scratches currently pooled.
    pub fn idle(&self) -> usize {
        self.free.len()
    }

    /// Take a scratch (reused if available, fresh otherwise).
    pub fn take(&mut self) -> DijkstraScratch {
        self.free.pop().unwrap_or_default()
    }

    /// Return a scratch to the pool for reuse.
    pub fn give_back(&mut self, scratch: DijkstraScratch) {
        self.free.push(scratch);
    }

    /// Take an empty per-link weight buffer (capacity reused).
    pub fn take_weights(&mut self) -> Vec<f64> {
        self.weight_buffers.pop().unwrap_or_default()
    }

    /// Return a weight buffer for reuse.
    pub fn give_back_weights(&mut self, mut buf: Vec<f64>) {
        buf.clear();
        self.weight_buffers.push(buf);
    }

    /// Take a Steiner work-buffer set (contents unspecified; every user
    /// clears what it fills).
    pub fn take_steiner_bufs(&mut self) -> SteinerBufs {
        self.steiner_bufs.pop().unwrap_or_default()
    }

    /// Return a Steiner work-buffer set for reuse.
    pub fn give_back_steiner_bufs(&mut self, bufs: SteinerBufs) {
        self.steiner_bufs.push(bufs);
    }

    /// Take a tree-surgery buffer set (contents unspecified).
    pub fn take_tree_bufs(&mut self) -> TreeBufs {
        self.tree_bufs.pop().unwrap_or_default()
    }

    /// Return a tree-surgery buffer set for reuse.
    pub fn give_back_tree_bufs(&mut self, bufs: TreeBufs) {
        self.tree_bufs.push(bufs);
    }

    /// Take the pool's [`crate::algo::ClosureCache`] (fresh on first
    /// use). The cache borrows scratches and buffers from the same pool
    /// during a solve, so it is taken out and given back around each use
    /// rather than borrowed in place. Because scheduling workers keep
    /// their pool for their whole lifetime, the cache — and every Voronoi
    /// pass it holds — stays warm across decisions, waves and runs.
    pub fn take_closure_cache(&mut self) -> crate::algo::closure::ClosureCache {
        self.closure.take().unwrap_or_default()
    }

    /// Return the pool's closure cache after a solve.
    pub fn give_back_closure_cache(&mut self, cache: crate::algo::closure::ClosureCache) {
        self.closure = Some(cache);
    }

    /// Cumulative decision counters of the pool's closure cache (zeros
    /// before first use or while the cache is taken out).
    pub fn closure_stats(&self) -> crate::algo::closure::ClosureStats {
        self.closure.as_ref().map(|c| c.stats()).unwrap_or_default()
    }

    /// The pool's decision-level [`ReadLog`]. Tree constructions drawing
    /// scratches from this pool absorb every search's consulted links into
    /// it; a decision loop resets it before proposing and reads the
    /// decision's read region off it afterwards.
    pub fn read_log(&self) -> &ReadLog {
        &self.read_log
    }

    /// Mutable access to the decision-level [`ReadLog`] (reset / absorb).
    pub fn read_log_mut(&mut self) -> &mut ReadLog {
        &mut self.read_log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::dijkstra::shortest_path_tree;
    use crate::algo::{hop_weight, length_weight};
    use crate::builders;

    #[test]
    fn matches_fresh_dijkstra_across_reuses() {
        let mut scratch = DijkstraScratch::new();
        for seed in 0..4 {
            let t = builders::random_connected(30, 0.15, seed, 100.0);
            for src in [NodeId(0), NodeId(5), NodeId(29)] {
                scratch.run(&t, src, length_weight).unwrap();
                let fresh = shortest_path_tree(&t, src, length_weight).unwrap();
                for n in t.node_ids() {
                    assert_eq!(
                        scratch.reachable(n),
                        fresh.reachable(n),
                        "seed {seed} src {src} node {n}"
                    );
                    if fresh.reachable(n) {
                        assert_eq!(scratch.cost_to(n), fresh.cost_to(n));
                        assert_eq!(scratch.parent_of(n), fresh.parent[n.index()]);
                        assert_eq!(scratch.path_to(n).unwrap(), fresh.path_to(n).unwrap());
                    }
                }
            }
        }
    }

    /// Deterministic pseudo-random positive weight with sprinkled
    /// infinities (disabled links), keyed by link id and seed.
    fn test_weight(l: u32, seed: u64) -> f64 {
        let h = (u64::from(l) + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(seed.wrapping_mul(0xbf58_476d_1ce4_e5b9));
        let h = (h ^ (h >> 31)).wrapping_mul(0x94d0_49bb_1331_11eb);
        if h % 13 == 0 {
            f64::INFINITY
        } else {
            0.25 + (h % 997) as f64 / 89.0
        }
    }

    fn assert_same_state(a: &DijkstraScratch, b: &DijkstraScratch, t: &Topology, ctx: &str) {
        for n in t.node_ids() {
            assert_eq!(a.reachable(n), b.reachable(n), "{ctx}: reachability of {n}");
            assert_eq!(
                a.cost_to(n).to_bits(),
                b.cost_to(n).to_bits(),
                "{ctx}: dist of {n}"
            );
            assert_eq!(a.parent_of(n), b.parent_of(n), "{ctx}: parent of {n}");
            assert_eq!(
                a.voronoi_label(n),
                b.voronoi_label(n),
                "{ctx}: label of {n}"
            );
        }
    }

    #[test]
    fn bucketed_pass_matches_heap_pass_bit_for_bit() {
        for seed in 0..6u64 {
            let t = builders::random_connected(60, 0.12, seed, 100.0);
            let weights: Vec<f64> = (0..t.link_count() as u32)
                .map(|l| test_weight(l, seed))
                .collect();
            let sources = [NodeId(0), NodeId(7), NodeId(23), NodeId(59)];
            let mut heap = DijkstraScratch::new();
            let mut bucketed = DijkstraScratch::new();
            heap.run_multi_with_weights(&t, &sources, &weights, None)
                .unwrap();
            bucketed
                .run_multi_bucketed_with_weights(&t, &sources, &weights)
                .unwrap();
            assert_same_state(&heap, &bucketed, &t, &format!("seed {seed}"));
        }
    }

    #[test]
    fn bucketed_pass_falls_back_on_degenerate_weights() {
        let t = builders::linear(4, 1.0, 100.0);
        let mut s = DijkstraScratch::new();
        // A zero weight is degenerate for the bucket width; the fallback
        // heap pass handles it (zero is a legal Dijkstra weight).
        s.run_multi_bucketed_with_weights(&t, &[NodeId(0)], &[0.0, 1.0, 1.0])
            .unwrap();
        assert_eq!(s.cost_to(NodeId(3)), 2.0);
        // Negative weights error exactly like the heap pass.
        assert!(matches!(
            s.run_multi_bucketed_with_weights(&t, &[NodeId(0)], &[-1.0, 1.0, 1.0]),
            Err(TopoError::BadWeight { .. })
        ));
    }

    /// Apply a deterministic mutation burst to `weights`; returns the
    /// changed links paired with their previous weight.
    fn mutate_weights(weights: &mut [f64], seed: u64, round: u64) -> Vec<(LinkId, f64)> {
        let mut changed = Vec::new();
        for (i, w) in weights.iter_mut().enumerate() {
            let h = (i as u64 + 1)
                .wrapping_mul(0xd6e8_feb8_6659_fd93)
                .wrapping_add((seed * 31 + round).wrapping_mul(0xa076_1d64_78bd_642f));
            let h = h ^ (h >> 29);
            let old = *w;
            match h % 23 {
                0 => *w = f64::INFINITY,                            // disable
                1 => *w = 0.25 + (h % 997) as f64 / 89.0,           // re-enable / rewrite
                2 if w.is_finite() => *w += (h % 50) as f64 / 10.0, // increase
                3 if w.is_finite() => *w = (*w * 0.5).max(0.1),     // decrease
                _ => continue,
            }
            changed.push((LinkId(i as u32), old));
        }
        changed
    }

    #[test]
    fn repair_matches_from_scratch_after_weight_deltas() {
        for seed in 0..5u64 {
            let t = builders::random_connected(50, 0.15, seed, 100.0);
            let mut weights: Vec<f64> = (0..t.link_count() as u32)
                .map(|l| test_weight(l, seed))
                .collect();
            let sources = [NodeId(3), NodeId(11), NodeId(42)];
            let mut live = DijkstraScratch::new();
            live.run_multi_with_weights(&t, &sources, &weights, None)
                .unwrap();
            let mut touched = Vec::new();
            for round in 0..4u64 {
                let old = weights.clone();
                let changed = mutate_weights(&mut weights, seed, round);
                let repaired = live
                    .repair_multi_with_weights(&t, &weights, &changed, usize::MAX, &mut touched)
                    .unwrap();
                assert!(repaired, "unbounded repair always applies");
                let mut fresh = DijkstraScratch::new();
                fresh
                    .run_multi_with_weights(&t, &sources, &weights, None)
                    .unwrap();
                assert_same_state(&live, &fresh, &t, &format!("seed {seed} round {round}"));
                // Every node whose state differs from the pre-delta run is
                // reported in `touched`.
                let touched_set: std::collections::BTreeSet<NodeId> =
                    touched.iter().copied().collect();
                let mut check = DijkstraScratch::new();
                check
                    .run_multi_with_weights(&t, &sources, &old, None)
                    .unwrap();
                for n in t.node_ids() {
                    let same = check.cost_to(n).to_bits() == live.cost_to(n).to_bits()
                        && check.parent_of(n) == live.parent_of(n)
                        && check.voronoi_label(n) == live.voronoi_label(n);
                    if !same {
                        assert!(
                            touched_set.contains(&n),
                            "seed {seed} round {round}: changed node {n} not reported"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_repair_bails_without_mutating() {
        let t = builders::random_connected(40, 0.2, 9, 100.0);
        let mut weights: Vec<f64> = (0..t.link_count() as u32)
            .map(|l| test_weight(l, 9))
            .collect();
        let sources = [NodeId(0), NodeId(20)];
        let mut live = DijkstraScratch::new();
        live.run_multi_with_weights(&t, &sources, &weights, None)
            .unwrap();
        let (dist_before, parent_before) = live.export(t.node_count());
        // Increase the weight of some tree link so a subtree is orphaned.
        let (_, tree_link) = t
            .node_ids()
            .find_map(|n| live.parent_of(n))
            .expect("some node has a parent");
        let old_w = weights[tree_link.index()];
        weights[tree_link.index()] += 1000.0;
        let mut touched = Vec::new();
        let repaired = live
            .repair_multi_with_weights(&t, &weights, &[(tree_link, old_w)], 0, &mut touched)
            .unwrap();
        assert!(!repaired, "budget 0 must reject any orphaning delta");
        let (dist_after, parent_after) = live.export(t.node_count());
        assert_eq!(
            dist_before, dist_after,
            "bailed repair must not mutate dists"
        );
        assert_eq!(
            parent_before, parent_after,
            "bailed repair must not mutate parents"
        );
    }

    #[test]
    fn stale_results_do_not_leak_across_runs() {
        let big = builders::ring(10, 1.0, 100.0);
        let small = builders::linear(3, 1.0, 100.0);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&big, NodeId(0), hop_weight).unwrap();
        assert!(scratch.reachable(NodeId(9)));
        scratch.run(&small, NodeId(0), hop_weight).unwrap();
        // Node 9 was reachable in the ring; in the 3-node line it must not be.
        assert!(!scratch.reachable(NodeId(9)));
        assert_eq!(scratch.cost_to(NodeId(9)), f64::INFINITY);
        assert_eq!(scratch.parent_of(NodeId(9)), None);
    }

    #[test]
    fn bad_weight_is_rejected() {
        let t = builders::linear(3, 1.0, 100.0);
        let mut scratch = DijkstraScratch::new();
        assert!(matches!(
            scratch.run(&t, NodeId(0), |_| -1.0),
            Err(TopoError::BadWeight { .. })
        ));
        // The scratch stays usable afterwards.
        scratch.run(&t, NodeId(0), hop_weight).unwrap();
        assert!(scratch.reachable(NodeId(2)));
    }

    #[test]
    fn unknown_source_errors() {
        let t = builders::linear(3, 1.0, 100.0);
        let mut scratch = DijkstraScratch::new();
        assert!(scratch.run(&t, NodeId(99), hop_weight).is_err());
    }

    #[test]
    fn pool_recycles_scratches() {
        let mut pool = ScratchPool::new();
        assert_eq!(pool.idle(), 0);
        let a = pool.take();
        let b = pool.take();
        pool.give_back(a);
        pool.give_back(b);
        assert_eq!(pool.idle(), 2);
        let _c = pool.take();
        assert_eq!(pool.idle(), 1);
    }

    #[test]
    fn multi_source_takes_the_nearest_source() {
        // 0-1-2-3-4 line: sources {0, 4} — node 1 attaches to 0, node 3 to 4,
        // node 2 ties and must resolve deterministically (cost 2 from both;
        // first relaxation wins unless a lower link id appears at equal cost,
        // so 2's parent comes via link 1, i.e. from node 1).
        let t = builders::linear(5, 1.0, 100.0);
        let weights: Vec<f64> = t.links().iter().map(hop_weight).collect();
        let mut scratch = DijkstraScratch::new();
        scratch
            .run_multi_with_weights(&t, &[NodeId(0), NodeId(4)], &weights, None)
            .unwrap();
        assert_eq!(scratch.cost_to(NodeId(0)), 0.0);
        assert_eq!(scratch.cost_to(NodeId(4)), 0.0);
        assert_eq!(scratch.parent_of(NodeId(0)), None);
        assert_eq!(scratch.parent_of(NodeId(4)), None);
        assert_eq!(scratch.cost_to(NodeId(1)), 1.0);
        assert_eq!(scratch.parent_of(NodeId(1)), Some((NodeId(0), LinkId(0))));
        assert_eq!(scratch.parent_of(NodeId(3)), Some((NodeId(4), LinkId(3))));
        assert_eq!(scratch.cost_to(NodeId(2)), 2.0);
        assert_eq!(scratch.parent_of(NodeId(2)), Some((NodeId(1), LinkId(1))));
    }

    #[test]
    fn multi_source_with_one_source_matches_single_source() {
        for seed in 0..3 {
            let t = builders::random_connected(25, 0.2, seed, 100.0);
            let weights: Vec<f64> = t.links().iter().map(length_weight).collect();
            let mut single = DijkstraScratch::new();
            let mut multi = DijkstraScratch::new();
            single
                .run_with_weights(&t, NodeId(3), &weights, None)
                .unwrap();
            multi
                .run_multi_with_weights(&t, &[NodeId(3)], &weights, None)
                .unwrap();
            for n in t.node_ids() {
                assert_eq!(single.cost_to(n), multi.cost_to(n), "seed {seed}");
                assert_eq!(single.parent_of(n), multi.parent_of(n), "seed {seed}");
            }
        }
    }

    #[test]
    fn voronoi_labels_name_the_nearest_source() {
        // 0-1-2-3-4 line, sources {0, 4}: labels partition the line, agree
        // with the parent chains, and unreached nodes have no label.
        let t = builders::linear(5, 1.0, 100.0);
        let weights: Vec<f64> = t.links().iter().map(hop_weight).collect();
        let mut scratch = DijkstraScratch::new();
        scratch
            .run_multi_with_weights(&t, &[NodeId(0), NodeId(4)], &weights, None)
            .unwrap();
        assert_eq!(scratch.voronoi_label(NodeId(0)), Some(0));
        assert_eq!(scratch.voronoi_label(NodeId(4)), Some(1));
        assert_eq!(scratch.voronoi_label(NodeId(1)), Some(0));
        assert_eq!(scratch.voronoi_label(NodeId(3)), Some(1));
        // Node 2 ties; its parent resolved to node 1, so its label must
        // follow the parent chain to source 0.
        assert_eq!(scratch.voronoi_label(NodeId(2)), Some(0));
        for n in t.node_ids() {
            let mut cur = n;
            while let Some((p, _)) = scratch.parent_of(cur) {
                cur = p;
            }
            let source = [NodeId(0), NodeId(4)][scratch.voronoi_label(n).unwrap() as usize];
            assert_eq!(cur, source, "label of {n} disagrees with parent chain");
        }
        assert_eq!(scratch.voronoi_label(NodeId(99)), None);
        // A fresh run invalidates old labels in O(1).
        scratch
            .run_with_weights(&t, NodeId(2), &weights, Some(&[NodeId(2)]))
            .unwrap();
        assert_eq!(scratch.voronoi_label(NodeId(2)), Some(0));
        assert_eq!(scratch.voronoi_label(NodeId(4)), None);
    }

    #[test]
    fn multi_source_rejects_empty_sources() {
        let t = builders::linear(3, 1.0, 100.0);
        let weights: Vec<f64> = t.links().iter().map(hop_weight).collect();
        let mut scratch = DijkstraScratch::new();
        assert!(matches!(
            scratch.run_multi_with_weights(&t, &[], &weights, None),
            Err(TopoError::EmptyInput(_))
        ));
    }

    #[test]
    fn multi_source_early_exit_settles_targets() {
        let t = builders::ring(12, 1.0, 100.0);
        let weights: Vec<f64> = t.links().iter().map(hop_weight).collect();
        let mut scratch = DijkstraScratch::new();
        scratch
            .run_multi_with_weights(
                &t,
                &[NodeId(0), NodeId(6)],
                &weights,
                Some(&[NodeId(3), NodeId(9)]),
            )
            .unwrap();
        // Both targets sit 3 hops from the nearest source.
        assert_eq!(scratch.cost_to(NodeId(3)), 3.0);
        assert_eq!(scratch.cost_to(NodeId(9)), 3.0);
        // Walking parents from a target must land on a source.
        let mut cur = NodeId(3);
        while let Some((p, _)) = scratch.parent_of(cur) {
            cur = p;
        }
        assert!(cur == NodeId(0) || cur == NodeId(6));
    }

    #[test]
    fn consulted_links_cover_everything_the_search_depends_on() {
        // Soundness of the read region: perturbing any link OUTSIDE the
        // consulted set must leave every result of the search untouched
        // (distances, parents, reachability). Checked across random
        // topologies, with and without early-exit targets.
        for seed in 0..6 {
            let t = builders::random_connected(28, 0.12, seed, 100.0);
            let weights: Vec<f64> = t.links().iter().map(length_weight).collect();
            for targets in [None, Some(vec![NodeId(7), NodeId(19)])] {
                let mut a = DijkstraScratch::new();
                a.run_with_weights(&t, NodeId(0), &weights, targets.as_deref())
                    .unwrap();
                let consulted: std::collections::BTreeSet<LinkId> =
                    a.consulted_links().iter().copied().collect();
                // Perturb every non-consulted link's weight.
                let mut perturbed = weights.clone();
                let mut changed = false;
                for (i, w) in perturbed.iter_mut().enumerate() {
                    if !consulted.contains(&LinkId(i as u32)) {
                        *w *= 0.25; // strictly cheaper: would attract paths
                        changed = true;
                    }
                }
                type NodeResult = (bool, f64, Option<(NodeId, LinkId)>);
                let snapshot: Vec<NodeResult> = t
                    .node_ids()
                    .map(|n| (a.reachable(n), a.cost_to(n), a.parent_of(n)))
                    .collect();
                let mut b = DijkstraScratch::new();
                b.run_with_weights(&t, NodeId(0), &perturbed, targets.as_deref())
                    .unwrap();
                for (n, (reach, cost, parent)) in t.node_ids().zip(snapshot) {
                    if reach {
                        assert_eq!(b.cost_to(n), cost, "seed {seed} node {n}");
                        assert_eq!(b.parent_of(n), parent, "seed {seed} node {n}");
                    }
                }
                if targets.is_none() {
                    // Full runs consult every link incident to a reached
                    // node, so only unreachable-to-unreachable links (none
                    // on a connected topology) stay outside the region.
                    assert!(!changed, "seed {seed}: full run left links unread");
                }
            }
        }
    }

    #[test]
    fn early_exit_consults_a_subset() {
        let t = builders::ring(16, 1.0, 100.0);
        let weights: Vec<f64> = t.links().iter().map(hop_weight).collect();
        let mut full = DijkstraScratch::new();
        full.run_with_weights(&t, NodeId(0), &weights, None)
            .unwrap();
        let mut early = DijkstraScratch::new();
        early
            .run_with_weights(&t, NodeId(0), &weights, Some(&[NodeId(1)]))
            .unwrap();
        assert!(early.consulted_links().len() < full.consulted_links().len());
        // No duplicates in either list.
        for s in [&full, &early] {
            let mut seen = std::collections::BTreeSet::new();
            for l in s.consulted_links() {
                assert!(seen.insert(*l), "duplicate consulted link {l}");
            }
        }
    }

    #[test]
    fn read_log_accumulates_and_resets() {
        let mut log = ReadLog::default();
        log.record(LinkId(3));
        log.record(LinkId(1));
        log.record(LinkId(3));
        assert_eq!(log.links(), &[LinkId(3), LinkId(1)]);
        log.reset();
        assert!(log.links().is_empty());
        log.record_all(4);
        assert_eq!(log.links().len(), 4);
        // Absorbing a completed search pulls in its consulted set.
        let t = builders::linear(4, 1.0, 100.0);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&t, NodeId(0), hop_weight).unwrap();
        log.reset();
        log.absorb(&scratch);
        assert_eq!(log.links().len(), scratch.consulted_links().len());
    }

    #[test]
    fn generation_wrap_resets_cleanly() {
        let t = builders::linear(4, 1.0, 100.0);
        let mut scratch = DijkstraScratch::new();
        scratch.run(&t, NodeId(0), hop_weight).unwrap();
        // Force the wrap path.
        scratch.generation = u32::MAX;
        scratch.run(&t, NodeId(1), hop_weight).unwrap();
        assert_eq!(scratch.cost_to(NodeId(3)), 2.0);
        assert_eq!(scratch.cost_to(NodeId(0)), 1.0);
    }
}
