//! Disjoint-set (union-find) with path compression and union by rank.

/// A classic disjoint-set forest over `0..n`.
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Reset to `n` singleton sets, reusing the allocations.
    pub fn reset(&mut self, n: usize) {
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.components = n;
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components remaining.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (with path compression).
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Compress the path.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merge the sets containing `x` and `y`. Returns `true` if a merge
    /// happened (`false` if already in the same set).
    pub fn union(&mut self, x: usize, y: usize) -> bool {
        let (rx, ry) = (self.find(x), self.find(y));
        if rx == ry {
            return false;
        }
        self.components -= 1;
        match self.rank[rx].cmp(&self.rank[ry]) {
            std::cmp::Ordering::Less => self.parent[rx] = ry,
            std::cmp::Ordering::Greater => self.parent[ry] = rx,
            std::cmp::Ordering::Equal => {
                self.parent[ry] = rx;
                self.rank[rx] += 1;
            }
        }
        true
    }

    /// Whether `x` and `y` are in the same set.
    pub fn connected(&mut self, x: usize, y: usize) -> bool {
        self.find(x) == self.find(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_as_singletons() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.components(), 5);
        assert!(!uf.connected(0, 1));
    }

    #[test]
    fn union_reduces_components() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert_eq!(uf.components(), 2);
        assert!(uf.union(1, 2));
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 3));
    }

    #[test]
    fn union_of_same_set_is_noop() {
        let mut uf = UnionFind::new(3);
        uf.union(0, 1);
        assert!(!uf.union(1, 0));
        assert_eq!(uf.components(), 2);
    }

    #[test]
    fn transitivity_holds_over_chains() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.components(), 1);
        assert!(uf.connected(0, 99));
    }

    #[test]
    fn len_and_is_empty() {
        assert!(UnionFind::new(0).is_empty());
        assert_eq!(UnionFind::new(7).len(), 7);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.reset(6);
        assert_eq!(uf.len(), 6);
        assert_eq!(uf.components(), 6);
        assert!(!uf.connected(0, 1));
        assert!(uf.union(4, 5));
    }
}
