//! The [`Topology`] container: an undirected multigraph of nodes and links.

use crate::error::TopoError;
use crate::ids::{LinkId, NodeId};
use crate::link::Link;
use crate::node::{Node, NodeKind};
use crate::Result;
use serde::{Deserialize, Serialize};

/// An undirected multigraph describing the physical network.
///
/// Nodes and links receive dense identifiers in insertion order, so
/// algorithms can use plain vectors indexed by id. Parallel links between a
/// node pair are allowed (fiber pairs / bundles); self-loops are not.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Topology {
    nodes: Vec<Node>,
    links: Vec<Link>,
    /// adjacency[n] = (neighbor, link) pairs, in link-insertion order.
    adjacency: Vec<Vec<(NodeId, LinkId)>>,
}

impl Topology {
    /// Create an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node of the given kind, returning its id.
    pub fn add_node(&mut self, kind: NodeKind, name: impl Into<String>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, kind, name));
        self.adjacency.push(Vec::new());
        id
    }

    /// Add a pre-built node, reassigning its id to the next dense slot.
    pub fn add_node_raw(&mut self, mut node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        node.id = id;
        self.nodes.push(node);
        self.adjacency.push(Vec::new());
        id
    }

    /// Add an undirected link between `a` and `b`.
    ///
    /// # Errors
    /// [`TopoError::SelfLoop`] if `a == b`; [`TopoError::UnknownNode`] if
    /// either endpoint does not exist.
    pub fn add_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        length_km: f64,
        capacity_gbps: f64,
    ) -> Result<LinkId> {
        if a == b {
            return Err(TopoError::SelfLoop(a));
        }
        self.check_node(a)?;
        self.check_node(b)?;
        let id = LinkId(self.links.len() as u32);
        self.links
            .push(Link::new(id, a, b, length_km, capacity_gbps));
        self.adjacency[a.index()].push((b, id));
        self.adjacency[b.index()].push((a, id));
        Ok(id)
    }

    /// Add a WDM link with an explicit wavelength count.
    pub fn add_wdm_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        length_km: f64,
        capacity_gbps: f64,
        wavelengths: u16,
    ) -> Result<LinkId> {
        let id = self.add_link(a, b, length_km, capacity_gbps)?;
        self.links[id.index()].wavelengths = wavelengths;
        Ok(id)
    }

    fn check_node(&self, n: NodeId) -> Result<()> {
        if n.index() < self.nodes.len() {
            Ok(())
        } else {
            Err(TopoError::UnknownNode(n))
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of links.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Look up a node.
    pub fn node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or(TopoError::UnknownNode(id))
    }

    /// Look up a link.
    pub fn link(&self, id: LinkId) -> Result<&Link> {
        self.links.get(id.index()).ok_or(TopoError::UnknownLink(id))
    }

    /// Tag a node with its fabric region (used by builders to record the
    /// metro site / fat-tree pod / spine-leaf rack each element was built
    /// into — the orchestrator's shard map partitions state along these).
    pub fn set_region(&mut self, id: NodeId, region: u32) -> Result<()> {
        self.nodes
            .get_mut(id.index())
            .ok_or(TopoError::UnknownNode(id))?
            .region = Some(region);
        Ok(())
    }

    /// Mutable link access (used by builders to tune capacities).
    pub fn link_mut(&mut self, id: LinkId) -> Result<&mut Link> {
        self.links
            .get_mut(id.index())
            .ok_or(TopoError::UnknownLink(id))
    }

    /// All nodes, in id order.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All links, in id order.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// All link ids, in order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Neighbors of `n` as `(neighbor, link)` pairs, in link insertion order.
    pub fn neighbors(&self, n: NodeId) -> Result<&[(NodeId, LinkId)]> {
        self.adjacency
            .get(n.index())
            .map(Vec::as_slice)
            .ok_or(TopoError::UnknownNode(n))
    }

    /// Degree (number of incident links, counting parallels) of `n`.
    pub fn degree(&self, n: NodeId) -> Result<usize> {
        Ok(self.neighbors(n)?.len())
    }

    /// Ids of all nodes with the given kind.
    pub fn nodes_of_kind(&self, kind: NodeKind) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind)
            .map(|n| n.id)
            .collect()
    }

    /// Ids of all server nodes (hosts for AI models).
    pub fn servers(&self) -> Vec<NodeId> {
        self.nodes_of_kind(NodeKind::Server)
    }

    /// The first link connecting `a` and `b`, if any.
    pub fn find_link(&self, a: NodeId, b: NodeId) -> Option<LinkId> {
        self.adjacency
            .get(a.index())?
            .iter()
            .find(|(nbr, _)| *nbr == b)
            .map(|(_, l)| *l)
    }

    /// Total fiber length in kilometres (sum over links).
    pub fn total_length_km(&self) -> f64 {
        self.links.iter().map(|l| l.length_km).sum()
    }

    /// Per-traversal latency of a link in nanoseconds: propagation plus the
    /// switching latency of the node being *entered* (`to`).
    ///
    /// # Errors
    /// If the link or node is unknown.
    pub fn hop_latency_ns(&self, link: LinkId, to: NodeId) -> Result<u64> {
        let l = self.link(link)?;
        let n = self.node(to)?;
        Ok(l.propagation_ns() + n.switch_latency_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Topology, [NodeId; 3], [LinkId; 3]) {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::IpRouter, "b");
        let c = t.add_node(NodeKind::Roadm, "c");
        let ab = t.add_link(a, b, 1.0, 100.0).unwrap();
        let bc = t.add_link(b, c, 2.0, 100.0).unwrap();
        let ca = t.add_link(c, a, 3.0, 100.0).unwrap();
        (t, [a, b, c], [ab, bc, ca])
    }

    #[test]
    fn dense_ids_in_insertion_order() {
        let (t, [a, b, c], [ab, bc, ca]) = triangle();
        assert_eq!((a, b, c), (NodeId(0), NodeId(1), NodeId(2)));
        assert_eq!((ab, bc, ca), (LinkId(0), LinkId(1), LinkId(2)));
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.link_count(), 3);
    }

    #[test]
    fn self_loop_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        assert_eq!(t.add_link(a, a, 1.0, 1.0), Err(TopoError::SelfLoop(a)));
    }

    #[test]
    fn unknown_endpoint_rejected() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let ghost = NodeId(99);
        assert_eq!(
            t.add_link(a, ghost, 1.0, 1.0),
            Err(TopoError::UnknownNode(ghost))
        );
    }

    #[test]
    fn adjacency_is_symmetric() {
        let (t, [a, b, _c], [ab, ..]) = triangle();
        assert!(t.neighbors(a).unwrap().contains(&(b, ab)));
        assert!(t.neighbors(b).unwrap().contains(&(a, ab)));
    }

    #[test]
    fn degree_counts_parallel_links() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::Server, "b");
        t.add_link(a, b, 1.0, 1.0).unwrap();
        t.add_link(a, b, 1.0, 1.0).unwrap();
        assert_eq!(t.degree(a).unwrap(), 2);
        assert_eq!(t.degree(b).unwrap(), 2);
    }

    #[test]
    fn find_link_returns_first_parallel() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Server, "a");
        let b = t.add_node(NodeKind::Server, "b");
        let first = t.add_link(a, b, 1.0, 1.0).unwrap();
        let _second = t.add_link(a, b, 1.0, 1.0).unwrap();
        assert_eq!(t.find_link(a, b), Some(first));
        assert_eq!(t.find_link(b, a), Some(first));
    }

    #[test]
    fn nodes_of_kind_filters() {
        let (t, [a, b, c], _) = triangle();
        assert_eq!(t.servers(), vec![a]);
        assert_eq!(t.nodes_of_kind(NodeKind::IpRouter), vec![b]);
        assert_eq!(t.nodes_of_kind(NodeKind::Roadm), vec![c]);
    }

    #[test]
    fn hop_latency_combines_propagation_and_switching() {
        let (t, [_a, b, _c], [ab, ..]) = triangle();
        // 1 km = 5000 ns propagation, entering router b adds 2000 ns.
        assert_eq!(t.hop_latency_ns(ab, b).unwrap(), 7_000);
    }

    #[test]
    fn wdm_link_sets_wavelengths() {
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Roadm, "a");
        let b = t.add_node(NodeKind::Roadm, "b");
        let l = t.add_wdm_link(a, b, 10.0, 800.0, 8).unwrap();
        assert_eq!(t.link(l).unwrap().wavelengths, 8);
        assert!((t.link(l).unwrap().channel_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn total_length_sums_links() {
        let (t, _, _) = triangle();
        assert!((t.total_length_km() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn serde_round_trip_preserves_structure() {
        let (t, _, _) = triangle();
        let json = serde_json_like(&t);
        // Poor-man's check without serde_json: Debug output of a clone must
        // match after a serialize/deserialize through bincode-like manual
        // equality; here we simply verify Clone + PartialEq of parts.
        assert_eq!(json.node_count(), t.node_count());
        assert_eq!(json.link_count(), t.link_count());
    }

    /// Stand-in "round trip" using Clone since no serde data format crate is
    /// whitelisted; the Serialize/Deserialize impls are exercised by the
    /// orchestrator's codec tests instead.
    fn serde_json_like(t: &Topology) -> Topology {
        t.clone()
    }
}
