//! Typed identifiers for topology elements.
//!
//! Plain `u32` indices wrapped in newtypes so a node index can never be used
//! where a link index is expected. Identifiers are dense: they are assigned
//! sequentially by [`crate::Topology`] starting from zero, which lets
//! algorithms use them directly as `Vec` indices.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (ROADM, IP router or server) inside a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifier of an undirected link inside a [`crate::Topology`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl NodeId {
    /// The identifier as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LinkId {
    /// The identifier as a `usize`, for vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for LinkId {
    fn from(v: u32) -> Self {
        LinkId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(LinkId(7).to_string(), "l7");
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(42).index(), 42);
        assert_eq!(LinkId(42).index(), 42);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(LinkId(0) < LinkId(9));
    }

    #[test]
    fn from_u32_conversions() {
        let n: NodeId = 5u32.into();
        let l: LinkId = 6u32.into();
        assert_eq!(n, NodeId(5));
        assert_eq!(l, LinkId(6));
    }
}
