//! Path representation: an alternating node/link walk through the topology.

use crate::error::TopoError;
use crate::ids::{LinkId, NodeId};
use crate::Result;
use crate::Topology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple path through the topology.
///
/// Invariant (checked by [`Path::validate`]): `links.len() + 1 == nodes.len()`
/// and `links[i]` connects `nodes[i]` to `nodes[i + 1]`. A single-node path
/// (empty `links`) represents "source equals destination".
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    /// Visited nodes, source first.
    pub nodes: Vec<NodeId>,
    /// Traversed links; `links[i]` joins `nodes[i]` and `nodes[i+1]`.
    pub links: Vec<LinkId>,
}

impl Path {
    /// A trivial path that starts and ends at `n`.
    pub fn trivial(n: NodeId) -> Self {
        Path {
            nodes: vec![n],
            links: Vec::new(),
        }
    }

    /// Construct from parts, validating the alternation invariant length-wise.
    pub fn new(nodes: Vec<NodeId>, links: Vec<LinkId>) -> Result<Self> {
        if nodes.is_empty() {
            return Err(TopoError::EmptyInput("path nodes"));
        }
        if links.len() + 1 != nodes.len() {
            return Err(TopoError::EmptyInput("path links/nodes length mismatch"));
        }
        Ok(Path { nodes, links })
    }

    /// Source node.
    #[inline]
    pub fn source(&self) -> NodeId {
        self.nodes[0]
    }

    /// Destination node.
    #[inline]
    pub fn destination(&self) -> NodeId {
        *self.nodes.last().expect("path has at least one node")
    }

    /// Number of hops (links traversed).
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Whether this path visits no link twice (link-simple).
    pub fn is_link_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.links.iter().all(|l| seen.insert(*l))
    }

    /// Whether this path visits no node twice (node-simple).
    pub fn is_node_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.nodes.iter().all(|n| seen.insert(*n))
    }

    /// Check structural consistency against a topology: every `links[i]` must
    /// actually connect `nodes[i]` and `nodes[i+1]`.
    pub fn validate(&self, topo: &Topology) -> Result<()> {
        for (i, l) in self.links.iter().enumerate() {
            let link = topo.link(*l)?;
            if !link.connects(self.nodes[i], self.nodes[i + 1]) {
                return Err(TopoError::UnknownLink(*l));
            }
        }
        Ok(())
    }

    /// End-to-end latency in nanoseconds: per-hop propagation plus the
    /// switching latency of every node *entered* (i.e. all but the source).
    pub fn latency_ns(&self, topo: &Topology) -> Result<u64> {
        let mut total = 0u64;
        for (i, l) in self.links.iter().enumerate() {
            total += topo.hop_latency_ns(*l, self.nodes[i + 1])?;
        }
        Ok(total)
    }

    /// Total fiber length along the path in kilometres.
    pub fn length_km(&self, topo: &Topology) -> Result<f64> {
        let mut total = 0.0;
        for l in &self.links {
            total += topo.link(*l)?.length_km;
        }
        Ok(total)
    }

    /// Minimum per-direction link capacity along the path (the bottleneck),
    /// in Gbit/s. A trivial path reports `f64::INFINITY`.
    pub fn bottleneck_gbps(&self, topo: &Topology) -> Result<f64> {
        let mut min = f64::INFINITY;
        for l in &self.links {
            min = min.min(topo.link(*l)?.capacity_gbps);
        }
        Ok(min)
    }

    /// Reverse the path in place (walks the same links backwards).
    pub fn reverse(&mut self) {
        self.nodes.reverse();
        self.links.reverse();
    }

    /// A reversed copy of the path.
    pub fn reversed(&self) -> Self {
        let mut p = self.clone();
        p.reverse();
        p
    }

    /// Concatenate `other` onto the end of this path. `other.source()` must
    /// equal `self.destination()`.
    pub fn join(&self, other: &Path) -> Result<Path> {
        if self.destination() != other.source() {
            return Err(TopoError::Disconnected {
                from: self.destination(),
                to: other.source(),
            });
        }
        let mut nodes = self.nodes.clone();
        nodes.extend_from_slice(&other.nodes[1..]);
        let mut links = self.links.clone();
        links.extend_from_slice(&other.links);
        Ok(Path { nodes, links })
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                write!(f, "->")?;
            }
            write!(f, "{n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeKind;

    fn line() -> (Topology, Vec<NodeId>, Vec<LinkId>) {
        let mut t = Topology::new();
        let nodes: Vec<NodeId> = (0..4)
            .map(|i| t.add_node(NodeKind::IpRouter, format!("r{i}")))
            .collect();
        let links: Vec<LinkId> = (0..3)
            .map(|i| t.add_link(nodes[i], nodes[i + 1], 1.0, 100.0).unwrap())
            .collect();
        (t, nodes, links)
    }

    #[test]
    fn construction_checks_lengths() {
        assert!(Path::new(vec![], vec![]).is_err());
        assert!(Path::new(vec![NodeId(0)], vec![LinkId(0)]).is_err());
        assert!(Path::new(vec![NodeId(0)], vec![]).is_ok());
    }

    #[test]
    fn endpoints_and_hops() {
        let (_, n, l) = line();
        let p = Path::new(n.clone(), l).unwrap();
        assert_eq!(p.source(), n[0]);
        assert_eq!(p.destination(), n[3]);
        assert_eq!(p.hop_count(), 3);
    }

    #[test]
    fn trivial_path_has_zero_cost() {
        let (t, n, _) = line();
        let p = Path::trivial(n[0]);
        assert_eq!(p.hop_count(), 0);
        assert_eq!(p.latency_ns(&t).unwrap(), 0);
        assert_eq!(p.bottleneck_gbps(&t).unwrap(), f64::INFINITY);
    }

    #[test]
    fn latency_accumulates_per_hop() {
        let (t, n, l) = line();
        let p = Path::new(n, l).unwrap();
        // Each hop: 1 km (5000 ns) + router entry (2000 ns) = 7000 ns.
        assert_eq!(p.latency_ns(&t).unwrap(), 21_000);
    }

    #[test]
    fn validate_detects_wrong_link() {
        let (t, n, l) = line();
        // Swap two links so links no longer connect consecutive nodes.
        let bad = Path::new(n, vec![l[1], l[0], l[2]]).unwrap();
        assert!(bad.validate(&t).is_err());
    }

    #[test]
    fn validate_accepts_correct_path() {
        let (t, n, l) = line();
        let p = Path::new(n, l).unwrap();
        p.validate(&t).unwrap();
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let (t, n, l) = line();
        let p = Path::new(n.clone(), l).unwrap();
        let r = p.reversed();
        assert_eq!(r.source(), n[3]);
        assert_eq!(r.destination(), n[0]);
        r.validate(&t).unwrap();
        assert_eq!(p.latency_ns(&t).unwrap(), 21_000);
    }

    #[test]
    fn join_requires_shared_endpoint() {
        let (_, n, l) = line();
        let p1 = Path::new(n[..2].to_vec(), l[..1].to_vec()).unwrap();
        let p2 = Path::new(n[1..].to_vec(), l[1..].to_vec()).unwrap();
        let joined = p1.join(&p2).unwrap();
        assert_eq!(joined.hop_count(), 3);
        assert_eq!(joined.source(), n[0]);
        assert_eq!(joined.destination(), n[3]);
        assert!(p2.join(&p1).is_err());
    }

    #[test]
    fn simplicity_checks() {
        let (_, n, l) = line();
        let p = Path::new(n.clone(), l.clone()).unwrap();
        assert!(p.is_node_simple());
        assert!(p.is_link_simple());
        let back_and_forth = Path::new(vec![n[0], n[1], n[0]], vec![l[0], l[0]]).unwrap();
        assert!(!back_and_forth.is_node_simple());
        assert!(!back_and_forth.is_link_simple());
    }

    #[test]
    fn display_renders_chain() {
        let (_, n, l) = line();
        let p = Path::new(n[..2].to_vec(), l[..1].to_vec()).unwrap();
        assert_eq!(p.to_string(), "n0->n1");
    }
}
