//! Link model: fiber spans / cables connecting two nodes.
//!
//! Links are undirected at the topology level; traffic and capacity are
//! accounted per [`Direction`] by higher layers (each fiber is in practice a
//! pair of unidirectional strands with identical characteristics).

use crate::ids::{LinkId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Speed of light in fiber: ~5 microseconds per kilometre.
pub const FIBER_NS_PER_KM: f64 = 5_000.0;

/// One of the two directions over an undirected link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Direction {
    /// From endpoint `a` towards endpoint `b`.
    AtoB,
    /// From endpoint `b` towards endpoint `a`.
    BtoA,
}

impl Direction {
    /// The opposite direction.
    #[inline]
    pub fn reverse(self) -> Self {
        match self {
            Direction::AtoB => Direction::BtoA,
            Direction::BtoA => Direction::AtoB,
        }
    }
}

/// An undirected fiber/cable between two topology nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Dense identifier assigned by the topology.
    pub id: LinkId,
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint.
    pub b: NodeId,
    /// Physical span length in kilometres (drives propagation delay).
    pub length_km: f64,
    /// Total per-direction capacity in Gbit/s. For WDM fibers this is the
    /// aggregate across all wavelengths; the optical crate refines it into
    /// per-wavelength channels.
    pub capacity_gbps: f64,
    /// Number of WDM wavelengths multiplexed on this fiber. `1` models a
    /// grey (non-WDM) cable such as a server attachment.
    pub wavelengths: u16,
}

impl Link {
    /// Create a link. `id` is normally assigned via [`crate::Topology::add_link`].
    pub fn new(id: LinkId, a: NodeId, b: NodeId, length_km: f64, capacity_gbps: f64) -> Self {
        Link {
            id,
            a,
            b,
            length_km,
            capacity_gbps,
            wavelengths: 1,
        }
    }

    /// Set the wavelength count (WDM fiber).
    pub fn with_wavelengths(mut self, w: u16) -> Self {
        self.wavelengths = w;
        self
    }

    /// Propagation delay for this span in nanoseconds.
    #[inline]
    pub fn propagation_ns(&self) -> u64 {
        (self.length_km * FIBER_NS_PER_KM).round() as u64
    }

    /// Per-wavelength channel capacity in Gbit/s.
    #[inline]
    pub fn channel_gbps(&self) -> f64 {
        self.capacity_gbps / f64::from(self.wavelengths.max(1))
    }

    /// The endpoint opposite to `n`, or `None` if `n` is not an endpoint.
    #[inline]
    pub fn opposite(&self, n: NodeId) -> Option<NodeId> {
        if n == self.a {
            Some(self.b)
        } else if n == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// The direction of travel when leaving node `from` over this link, or
    /// `None` if `from` is not an endpoint.
    #[inline]
    pub fn direction_from(&self, from: NodeId) -> Option<Direction> {
        if from == self.a {
            Some(Direction::AtoB)
        } else if from == self.b {
            Some(Direction::BtoA)
        } else {
            None
        }
    }

    /// Whether this link connects `x` and `y` (in either order).
    #[inline]
    pub fn connects(&self, x: NodeId, y: NodeId) -> bool {
        (self.a == x && self.b == y) || (self.a == y && self.b == x)
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}<->{} {:.1}km {:.0}G]",
            self.id, self.a, self.b, self.length_km, self.capacity_gbps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l() -> Link {
        Link::new(LinkId(0), NodeId(1), NodeId(2), 10.0, 400.0).with_wavelengths(4)
    }

    #[test]
    fn propagation_uses_fiber_speed() {
        assert_eq!(l().propagation_ns(), 50_000); // 10 km * 5 us/km
    }

    #[test]
    fn channel_capacity_divides_by_wavelengths() {
        assert!((l().channel_gbps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn channel_capacity_handles_zero_wavelengths() {
        let mut link = l();
        link.wavelengths = 0;
        assert!((link.channel_gbps() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn opposite_endpoint() {
        assert_eq!(l().opposite(NodeId(1)), Some(NodeId(2)));
        assert_eq!(l().opposite(NodeId(2)), Some(NodeId(1)));
        assert_eq!(l().opposite(NodeId(9)), None);
    }

    #[test]
    fn direction_from_endpoints() {
        assert_eq!(l().direction_from(NodeId(1)), Some(Direction::AtoB));
        assert_eq!(l().direction_from(NodeId(2)), Some(Direction::BtoA));
        assert_eq!(l().direction_from(NodeId(3)), None);
    }

    #[test]
    fn direction_reverse_is_involution() {
        assert_eq!(Direction::AtoB.reverse(), Direction::BtoA);
        assert_eq!(Direction::AtoB.reverse().reverse(), Direction::AtoB);
    }

    #[test]
    fn connects_is_order_insensitive() {
        assert!(l().connects(NodeId(1), NodeId(2)));
        assert!(l().connects(NodeId(2), NodeId(1)));
        assert!(!l().connects(NodeId(1), NodeId(3)));
    }
}
