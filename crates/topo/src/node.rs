//! Node model: the three element classes of the paper's testbed.
//!
//! Figure 2 of the poster shows reconfigurable optical add/drop multiplexers
//! (ROADMs) and IP routers doing traffic switching and grooming, plus servers
//! (Linux + Docker) hosting the AI models. [`NodeKind`] captures exactly those
//! three roles; scheduling and placement logic in higher crates keys off it.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a node plays in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// Reconfigurable optical add/drop multiplexer: switches wavelengths,
    /// cannot terminate IP traffic and cannot host compute.
    Roadm,
    /// IP router: terminates/grooms IP traffic, can aggregate model updates
    /// in-network, but hosts no AI workloads itself.
    IpRouter,
    /// Server: hosts containers that run global or local AI models. Servers
    /// can also aggregate updates (they run the aggregation operator locally).
    Server,
}

impl NodeKind {
    /// Whether in-network aggregation of model updates may run on this node.
    ///
    /// The flexible scheduler places aggregation "in the middle and final
    /// nodes of the upload procedure"; electronically-terminating nodes
    /// (routers and servers) can do this, all-optical ROADMs cannot.
    #[inline]
    pub fn can_aggregate(self) -> bool {
        matches!(self, NodeKind::IpRouter | NodeKind::Server)
    }

    /// Whether AI workloads (global/local models) may be placed on this node.
    #[inline]
    pub fn can_host_compute(self) -> bool {
        matches!(self, NodeKind::Server)
    }

    /// Whether the node switches traffic all-optically (wavelength granular).
    #[inline]
    pub fn is_optical(self) -> bool {
        matches!(self, NodeKind::Roadm)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NodeKind::Roadm => "roadm",
            NodeKind::IpRouter => "router",
            NodeKind::Server => "server",
        };
        f.write_str(s)
    }
}

/// A physical node of the topology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Dense identifier assigned by the topology.
    pub id: NodeId,
    /// Role of this node.
    pub kind: NodeKind,
    /// Human-readable name (unique within a topology by convention, not
    /// enforcement).
    pub name: String,
    /// Fixed electronic processing latency added per traversal, in
    /// nanoseconds. ROADMs switch in the optical domain and typically carry
    /// a near-zero value here; routers carry store-and-forward lookup cost.
    pub switch_latency_ns: u64,
    /// Fabric region this node belongs to: the metro site, fat-tree pod or
    /// spine-leaf rack it was built into. `None` for region-less elements
    /// (fat-tree cores, spine switches) and hand-built topologies; the
    /// orchestrator's shard map folds untagged nodes into shard 0.
    #[serde(default)]
    pub region: Option<u32>,
}

impl Node {
    /// Create a node. `id` is normally assigned via [`crate::Topology::add_node`].
    pub fn new(id: NodeId, kind: NodeKind, name: impl Into<String>) -> Self {
        let switch_latency_ns = match kind {
            NodeKind::Roadm => 50,       // optical switching, negligible
            NodeKind::IpRouter => 2_000, // lookup + queue admission
            NodeKind::Server => 3_000,   // NIC + kernel/SmartNIC path
        };
        Node {
            id,
            kind,
            name: name.into(),
            switch_latency_ns,
            region: None,
        }
    }

    /// Override the per-traversal switching latency.
    pub fn with_switch_latency_ns(mut self, ns: u64) -> Self {
        self.switch_latency_ns = ns;
        self
    }

    /// Tag the node with the fabric region it belongs to.
    pub fn with_region(mut self, region: u32) -> Self {
        self.region = Some(region);
        self
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({}:{})", self.name, self.kind, self.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregation_capability_matches_roles() {
        assert!(!NodeKind::Roadm.can_aggregate());
        assert!(NodeKind::IpRouter.can_aggregate());
        assert!(NodeKind::Server.can_aggregate());
    }

    #[test]
    fn only_servers_host_compute() {
        assert!(!NodeKind::Roadm.can_host_compute());
        assert!(!NodeKind::IpRouter.can_host_compute());
        assert!(NodeKind::Server.can_host_compute());
    }

    #[test]
    fn only_roadms_are_optical() {
        assert!(NodeKind::Roadm.is_optical());
        assert!(!NodeKind::IpRouter.is_optical());
        assert!(!NodeKind::Server.is_optical());
    }

    #[test]
    fn default_switch_latency_reflects_kind() {
        let roadm = Node::new(NodeId(0), NodeKind::Roadm, "r0");
        let router = Node::new(NodeId(1), NodeKind::IpRouter, "ip0");
        let server = Node::new(NodeId(2), NodeKind::Server, "s0");
        assert!(roadm.switch_latency_ns < router.switch_latency_ns);
        assert!(router.switch_latency_ns <= server.switch_latency_ns);
    }

    #[test]
    fn latency_override_applies() {
        let n = Node::new(NodeId(0), NodeKind::Server, "s").with_switch_latency_ns(77);
        assert_eq!(n.switch_latency_ns, 77);
    }

    #[test]
    fn region_tag_defaults_to_none_and_applies() {
        let n = Node::new(NodeId(0), NodeKind::Server, "s");
        assert_eq!(n.region, None);
        assert_eq!(n.with_region(3).region, Some(3));
    }

    #[test]
    fn display_contains_name_kind_and_id() {
        let n = Node::new(NodeId(4), NodeKind::IpRouter, "core-1");
        assert_eq!(n.to_string(), "core-1(router:n4)");
    }
}
