//! Property-based tests for the schedulers.

use flexsched_compute::{ClusterManager, ModelProfile, ServerSpec};
use flexsched_sched::{
    evaluate_schedule, FixedSpff, FlexibleMst, NetworkSnapshot, RoutingPlan, Scheduler,
};
use flexsched_simnet::{NetworkState, Transport};
use flexsched_task::{AiTask, TaskId};
use flexsched_topo::builders;
use proptest::prelude::*;
use std::sync::Arc;

fn make_task(topo: &flexsched_topo::Topology, n_locals: usize, seed: u64) -> AiTask {
    let servers = topo.servers();
    let g = servers[(seed as usize) % servers.len()];
    let mut locals = Vec::new();
    let mut i = seed as usize + 1;
    while locals.len() < n_locals {
        let cand = servers[i % servers.len()];
        if cand != g && !locals.contains(&cand) {
            locals.push(cand);
        }
        i += 1;
    }
    locals.sort();
    AiTask {
        id: TaskId(seed),
        model: ModelProfile::mobilenet(),
        global_site: g,
        local_sites: locals,
        data_utility: Default::default(),
        iterations: 3,
        comm_budget_ms: 10.0,
        arrival_ns: 0,
        class: Default::default(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every local selected must appear in the broadcast and upload plans,
    /// with routes that actually connect the global site to it.
    #[test]
    fn schedules_cover_all_selected_locals(n in 1usize..16, seed in 0u64..200) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let task = make_task(&topo, n, seed);
        let snap = NetworkSnapshot::capture(&state);
        for sched in [&FixedSpff as &dyn Scheduler, &FlexibleMst::paper()] {
            let s = sched.propose_once(&task, &task.local_sites, &snap).unwrap().schedule;
            match &s.broadcast {
                RoutingPlan::Paths(m) => {
                    for local in &task.local_sites {
                        let rp = &m[local];
                        prop_assert_eq!(rp.path.source(), task.global_site);
                        prop_assert_eq!(rp.path.destination(), *local);
                        rp.path.validate(&topo).unwrap();
                    }
                }
                RoutingPlan::Tree { tree, .. } => {
                    for local in &task.local_sites {
                        let p = tree.path_from_root(*local).unwrap();
                        prop_assert_eq!(p.destination(), *local);
                        p.validate(&topo).unwrap();
                    }
                }
            }
        }
    }

    /// The flexible scheduler never consumes more bandwidth than the fixed
    /// baseline for the same task (the Figure-3b dominance).
    #[test]
    fn flexible_bandwidth_dominates(n in 2usize..16, seed in 0u64..200) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let task = make_task(&topo, n, seed);
        let snap = NetworkSnapshot::capture(&state);
        let fixed = FixedSpff.propose_once(&task, &task.local_sites, &snap).unwrap().schedule;
        let flex = FlexibleMst::paper().propose_once(&task, &task.local_sites, &snap).unwrap().schedule;
        let bx = fixed.total_bandwidth_gbps(&topo).unwrap();
        let bf = flex.total_bandwidth_gbps(&topo).unwrap();
        prop_assert!(bf <= bx + 1e-6, "flexible {bf} > fixed {bx} at n={n}");
    }

    /// Applying then releasing any schedule leaves the network untouched,
    /// and the applied amount matches the schedule's own accounting.
    #[test]
    fn apply_release_conservation(n in 1usize..14, seed in 0u64..200, flex in proptest::bool::ANY) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let mut state = NetworkState::new(Arc::clone(&topo));
        let task = make_task(&topo, n, seed);
        let s = {
            let snap = NetworkSnapshot::capture(&state);
            if flex {
                FlexibleMst::paper().propose_once(&task, &task.local_sites, &snap).unwrap().schedule
            } else {
                FixedSpff.propose_once(&task, &task.local_sites, &snap).unwrap().schedule
            }
        };
        s.apply(&mut state).unwrap();
        let reserved = state.total_reserved_gbps();
        let accounted = s.total_bandwidth_gbps(&topo).unwrap();
        prop_assert!((reserved - accounted).abs() < 1e-6,
            "reserved {reserved} != accounted {accounted}");
        s.release(&mut state).unwrap();
        prop_assert!(state.total_reserved_gbps().abs() < 1e-9);
    }

    /// Evaluation is deterministic and all its latency components positive.
    #[test]
    fn evaluation_is_deterministic(n in 1usize..12, seed in 0u64..100) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let mut state = NetworkState::new(Arc::clone(&topo));
        let cluster = ClusterManager::from_topology(&topo, ServerSpec::default());
        let task = make_task(&topo, n, seed);
        let s = {
            let snap = NetworkSnapshot::capture(&state);
            FlexibleMst::paper().propose_once(&task, &task.local_sites, &snap).unwrap().schedule
        };
        s.apply(&mut state).unwrap();
        let a = evaluate_schedule(&task, &s, &state, &cluster, &Transport::tcp()).unwrap();
        let b = evaluate_schedule(&task, &s, &state, &cluster, &Transport::tcp()).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.broadcast_ns > 0);
        prop_assert!(a.upload_ns > 0);
        prop_assert!(a.iteration_ns() >= a.training_ns);
    }

    /// Tree reservations never exceed residual capacity at apply time, for
    /// sequences of tasks applied one after another.
    #[test]
    fn sequential_tasks_never_oversubscribe(
        seeds in proptest::collection::vec(0u64..400, 1..8)
    ) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let mut state = NetworkState::new(Arc::clone(&topo));
        let mut applied = Vec::new();
        for (i, seed) in seeds.iter().enumerate() {
            let task = make_task(&topo, 4 + (i % 8), *seed);
            let res = {
                let snap = NetworkSnapshot::capture(&state);
                FlexibleMst::paper().propose_once(&task, &task.local_sites, &snap)
            };
            if let Ok(p) = res {
                let s = p.schedule;
                // apply may legitimately fail only by Blocked-style races,
                // but never corrupt state.
                if s.apply(&mut state).is_ok() {
                    applied.push(s);
                }
            }
            // Invariant: no directed link oversubscribed.
            for l in topo.link_ids() {
                for dir in [flexsched_topo::Direction::AtoB, flexsched_topo::Direction::BtoA] {
                    let dl = flexsched_simnet::DirLink::new(l, dir);
                    let u = state.usage(dl).unwrap();
                    let cap = topo.link(l).unwrap().capacity_gbps;
                    prop_assert!(u.occupied_gbps() <= cap + 1e-6,
                        "link {l} oversubscribed: {} > {cap}", u.occupied_gbps());
                }
            }
        }
        for s in applied {
            s.release(&mut state).unwrap();
        }
        prop_assert!(state.total_reserved_gbps().abs() < 1e-6);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Read-region soundness: every link a decision's weights consulted is
    /// in its recorded read region (or its claim footprint). Checked by
    /// the contrapositive, which is the property the commit pipeline
    /// actually relies on: perturbing state on links **outside**
    /// `reads ∪ writes` must leave a fresh decision bit-identical — same
    /// claimed directed-link rates, same stamped claims, same read region.
    /// If the recorder ever missed a consulted link, some seed here would
    /// find a perturbation that steers the fresh decision while the
    /// recorded region claims nothing changed.
    #[test]
    fn read_region_covers_every_consulted_link(
        n in 1usize..12,
        seed in 0u64..400,
        preload in proptest::collection::vec((0u64..200, 1.0f64..60.0), 0..6),
        bumps in proptest::collection::vec((0u64..200, 1.0f64..60.0), 1..6),
        sparse in proptest::bool::ANY,
    ) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let mut state = NetworkState::new(Arc::clone(&topo));
        let links = topo.link_count() as u64;
        // Background load shapes the decision so the read region is not
        // just the idle-network default.
        for (pick, gbps) in &preload {
            let l = flexsched_topo::LinkId((pick % links) as u32);
            let dl = flexsched_simnet::DirLink::new(l, flexsched_topo::Direction::AtoB);
            let _ = state.add_background(dl, *gbps);
        }
        // The sparse (Mehlhorn) closure's read region is the whole link
        // set by construction, so the perturbation test is vacuous there;
        // still exercised to pin that nothing panics and regions are full.
        let sched = if sparse {
            FlexibleMst::paper().with_sparse_closure_threshold(1)
        } else {
            FlexibleMst::paper()
        };
        let task = make_task(&topo, n, seed);
        let snap = NetworkSnapshot::capture(&state);
        let Ok(p1) = sched.propose_once(&task, &task.local_sites, &snap) else {
            return Ok(()); // preload blocked the task; nothing to check
        };
        let mut region: Vec<flexsched_topo::LinkId> = p1.claims.footprint();
        region.extend(p1.claims.reads.iter().map(|r| r.link));
        region.sort_unstable();

        // Perturb only links outside the recorded region.
        let mut touched_any = false;
        for (pick, gbps) in &bumps {
            let l = flexsched_topo::LinkId((pick % links) as u32);
            if region.binary_search(&l).is_ok() {
                continue;
            }
            let dl = flexsched_simnet::DirLink::new(l, flexsched_topo::Direction::AtoB);
            if state.add_background(dl, *gbps).is_ok() {
                touched_any = true;
            }
        }
        if !touched_any {
            return Ok(()); // every candidate bump landed inside the region
        }

        let fresh_snap = NetworkSnapshot::capture(&state);
        let p2 = sched
            .propose_once(&task, &task.local_sites, &fresh_snap)
            .expect("perturbation outside the region cannot block the task");
        // Bit-identical decision: claimed rates, stamped claims and the
        // recorded read region all replay exactly.
        prop_assert_eq!(&p1.claims.links, &p2.claims.links,
            "a commit outside the read region steered the decision");
        prop_assert_eq!(&p1.claims.reads, &p2.claims.reads);
        let r1 = p1.schedule.reservations(&topo).unwrap();
        let r2 = p2.schedule.reservations(&topo).unwrap();
        prop_assert_eq!(r1, r2, "reservations diverged");
    }
}
