//! Rescheduling: the interruption-vs-saving trade-off (open challenge #1).
//!
//! "Routing paths and aggregation procedures must be initially scheduled
//! for each AI task, and then re-scheduled when the deployed AI tasks and
//! networks change. ... We also need to balance a trade-off between
//! re-scheduling (temporary interruption) and bandwidth/latency saving."
//!
//! The policy here: re-evaluate the task's current schedule against fresh
//! network state, compute a candidate schedule, and migrate only when the
//! predicted latency saving over the task's remaining iterations outweighs
//! the interruption cost by a configurable factor.

use crate::evaluate::evaluate_schedule;
use crate::proposal::Proposal;
use crate::schedule::Schedule;
use crate::snapshot::NetworkSnapshot;
use crate::{Result, Scheduler};
use flexsched_compute::ClusterManager;
use flexsched_simnet::{NetworkState, Transport};
use flexsched_task::AiTask;
use flexsched_topo::algo::ScratchPool;

/// Rescheduling decision knobs.
#[derive(Debug, Clone)]
pub struct ReschedulePolicy {
    /// Time the task is paused while paths are reconfigured, ns.
    pub interruption_ns: u64,
    /// Required benefit-to-cost ratio before migrating (1.0 = break-even;
    /// higher = more conservative).
    pub threshold: f64,
}

impl Default for ReschedulePolicy {
    fn default() -> Self {
        ReschedulePolicy {
            // SDN flow-rule + ROADM reconfiguration: a few milliseconds.
            interruption_ns: 5_000_000,
            threshold: 1.5,
        }
    }
}

/// Outcome of a rescheduling consideration.
#[derive(Debug)]
pub enum RescheduleVerdict {
    /// Keep the current schedule (saving does not justify interruption).
    Keep {
        /// Predicted total saving that was rejected, ns (may be negative).
        rejected_saving_ns: i64,
    },
    /// Migrate to the new schedule.
    Migrate {
        /// The replacement proposal (claims not yet validated or applied —
        /// the orchestrator's committer does that).
        new_proposal: Box<Proposal>,
        /// Predicted latency saving over remaining iterations, ns.
        predicted_saving_ns: i64,
        /// Bandwidth change (new - old), Gbit/s·link (negative = saving).
        bandwidth_delta_gbps: f64,
    },
}

/// Consider rescheduling `task` (currently running `current`, with
/// `remaining_iterations` left) under fresh network conditions.
///
/// `state` must be the live network state *with `current` applied*. The
/// candidate is proposed against a snapshot of a hypothetical state where
/// the task's own reservations are released (so it does not compete with
/// itself); the live state is never mutated — the only `apply` here runs on
/// a private clone to price the candidate. A `Migrate` verdict hands back a
/// [`Proposal`] for the orchestrator's committer to validate and install.
#[allow(clippy::too_many_arguments)]
pub fn consider(
    policy: &ReschedulePolicy,
    scheduler: &dyn Scheduler,
    task: &AiTask,
    current: &Schedule,
    remaining_iterations: u32,
    state: &NetworkState,
    cluster: &ClusterManager,
    transport: &Transport,
    scratch: &mut ScratchPool,
) -> Result<RescheduleVerdict> {
    // Current cost under today's conditions.
    let current_report = evaluate_schedule(task, current, state, cluster, transport)?;

    // Hypothetical world without our reservations.
    let mut without_us = state.clone();
    current.release(&mut without_us)?;
    let candidate = {
        let snap = NetworkSnapshot::capture(&without_us);
        scheduler.propose(task, &current.selected_locals, &snap, scratch)?
    };
    let mut with_candidate = without_us.clone();
    candidate.schedule.apply(&mut with_candidate)?;
    let candidate_report = evaluate_schedule(
        task,
        &candidate.schedule,
        &with_candidate,
        cluster,
        transport,
    )?;

    let per_iter_saving =
        current_report.iteration_ns() as i64 - candidate_report.iteration_ns() as i64;
    let total_saving = per_iter_saving * i64::from(remaining_iterations);
    let cost = (policy.interruption_ns as f64 * policy.threshold) as i64;

    if total_saving > cost {
        let bandwidth_delta_gbps = candidate.schedule.total_bandwidth_gbps(state.topo())?
            - current.total_bandwidth_gbps(state.topo())?;
        Ok(RescheduleVerdict::Migrate {
            new_proposal: Box::new(candidate),
            predicted_saving_ns: total_saving,
            bandwidth_delta_gbps,
        })
    } else {
        Ok(RescheduleVerdict::Keep {
            rejected_saving_ns: total_saving,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedSpff;
    use crate::flexible::FlexibleMst;
    use flexsched_compute::{ModelProfile, ServerSpec};
    use flexsched_simnet::DirLink;
    use flexsched_task::TaskId;
    use flexsched_topo::{builders, Direction};
    use std::sync::Arc;

    fn rig() -> (NetworkState, ClusterManager, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let cluster = ClusterManager::from_topology(&topo, ServerSpec::default());
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=8].to_vec(),
            data_utility: Default::default(),
            iterations: 10,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
        };
        (state, cluster, task)
    }

    fn schedule_with(sched: &dyn Scheduler, state: &NetworkState, task: &AiTask) -> Schedule {
        let snap = NetworkSnapshot::capture(state);
        sched
            .propose_once(task, &task.local_sites, &snap)
            .unwrap()
            .schedule
    }

    #[test]
    fn stable_network_keeps_schedule() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let verdict = consider(
            &ReschedulePolicy::default(),
            &sched,
            &task,
            &current,
            8,
            &state,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert!(
            matches!(verdict, RescheduleVerdict::Keep { .. }),
            "nothing changed; migration would be pure interruption"
        );
    }

    #[test]
    fn link_failure_triggers_migration() {
        let (mut state, cluster, task) = rig();
        let sched = FixedSpff;
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();

        // Cut a core ring span (ROADM-to-ROADM) the schedule uses: the
        // current schedule stalls while a rerouted candidate detours the
        // ring around the failure.
        let core = current
            .reservations(state.topo())
            .unwrap()
            .into_iter()
            .map(|(dl, _)| dl)
            .find(|dl| {
                let l = state.topo().link(dl.link).unwrap();
                let a = state.topo().node(l.a).unwrap().kind;
                let b = state.topo().node(l.b).unwrap().kind;
                a == flexsched_topo::NodeKind::Roadm && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        state.set_down(core.link, true).unwrap();

        let verdict = consider(
            &ReschedulePolicy {
                interruption_ns: 1_000,
                threshold: 1.0,
            },
            &sched,
            &task,
            &current,
            10,
            &state,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        match verdict {
            RescheduleVerdict::Migrate {
                predicted_saving_ns,
                new_proposal,
                ..
            } => {
                assert!(predicted_saving_ns > 0);
                for (dl, _) in new_proposal.schedule.reservations(state.topo()).unwrap() {
                    assert_ne!(dl.link, core.link, "candidate must avoid the cut link");
                }
                // The migration hands the committer validated claims too.
                assert!(!new_proposal.claims.links.is_empty());
            }
            RescheduleVerdict::Keep { rejected_saving_ns } => {
                panic!("expected migration, saving was {rejected_saving_ns}")
            }
        }
    }

    #[test]
    fn high_threshold_suppresses_migration() {
        let (mut state, cluster, task) = rig();
        let sched = FixedSpff;
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let (dl0, _) = current.reservations(state.topo()).unwrap()[0];
        let residual = state.residual_gbps(dl0).unwrap();
        state.add_background(dl0, residual * 0.9).unwrap();

        let verdict = consider(
            &ReschedulePolicy {
                interruption_ns: u64::MAX / 4,
                threshold: 1_000.0,
            },
            &sched,
            &task,
            &current,
            2,
            &state,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert!(matches!(verdict, RescheduleVerdict::Keep { .. }));
    }

    #[test]
    fn consider_does_not_mutate_live_state() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let before = state.total_reserved_gbps();
        let version_before = state.version();
        let _ = consider(
            &ReschedulePolicy::default(),
            &sched,
            &task,
            &current,
            5,
            &state,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert_eq!(state.total_reserved_gbps(), before);
        assert_eq!(state.version(), version_before, "live state must not move");
        let _ = DirLink::new(flexsched_topo::LinkId(0), Direction::AtoB);
    }
}
