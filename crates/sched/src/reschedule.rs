//! Rescheduling: the interruption-vs-saving trade-off (open challenge #1),
//! now repair-first.
//!
//! "Routing paths and aggregation procedures must be initially scheduled
//! for each AI task, and then re-scheduled when the deployed AI tasks and
//! networks change. ... We also need to balance a trade-off between
//! re-scheduling (temporary interruption) and bandwidth/latency saving."
//!
//! Two paths through a rescheduling consideration:
//!
//! * **Repair path** (default, [`ReschedulePolicy::prefer_repair`]): when
//!   the running schedule's tree crosses a broken link, ask the policy for
//!   an [incremental repair](crate::repair) — detach the orphaned subtree,
//!   re-attach it via a frontier-restricted search — and migrate
//!   *unconditionally*: a schedule across a dead link serves nothing, so
//!   the interruption trade-off does not apply. Repair proposals speculate
//!   against the **live** snapshot (crediting the task's own
//!   reservations), so their claims carry live version stamps and the
//!   committer's strict migration gate can detect interference.
//! * **Full re-solve path** (fallback, and the only path for load-driven
//!   reschedules): re-run the scheduler against a hypothetical world
//!   without the task's own reservations, and migrate only when the
//!   predicted latency saving over the remaining iterations outweighs the
//!   interruption cost by the configured factor.

use crate::evaluate::evaluate_schedule;
use crate::proposal::Proposal;
use crate::retry::RetryPolicy;
use crate::schedule::Schedule;
use crate::snapshot::NetworkSnapshot;
use crate::{Result, Scheduler};
use flexsched_compute::ClusterManager;
use flexsched_simnet::{NetworkState, Transport};
use flexsched_task::AiTask;
use flexsched_topo::algo::ScratchPool;

/// Rescheduling decision knobs.
#[derive(Debug, Clone)]
pub struct ReschedulePolicy {
    /// Time the task is paused while paths are reconfigured, ns.
    pub interruption_ns: u64,
    /// Required benefit-to-cost ratio before migrating (1.0 = break-even;
    /// higher = more conservative).
    pub threshold: f64,
    /// Try an incremental tree repair before a full re-solve. Repairs are
    /// an order of magnitude cheaper per decision (one frontier search
    /// versus two Steiner constructions) and their claims delta keeps the
    /// migration's interference footprint small.
    pub prefer_repair: bool,
    /// Repair-drift guard: after this many *consecutive* repairs of one
    /// task's schedule (no full re-solve in between), force the next
    /// rescheduling consideration down the full re-solve path even when a
    /// repair would apply. Greedy grafts accumulate: each repair is
    /// locally cheapest, but a long chain can drift a tree away from what
    /// a fresh solve would build. The caller tracks the per-task counter
    /// (the orchestrator keeps it in the `Database`) and hands it to
    /// [`consider`]; `None` never forces a re-solve (the pre-guard
    /// behaviour). The default is backed by the fault-storm drift sweep in
    /// `flexsched-bench/tests/repair_differential.rs` — long storms show
    /// the service gap stays bounded while per-decision cost stays near
    /// the pure-repair policy.
    pub resolve_after_repairs: Option<u32>,
    /// Weight-drift trigger: skip the repair and take the full re-solve
    /// path when the repaired broadcast tree's cost exceeds a cheap fresh
    /// estimate ([`crate::Scheduler::estimate_fresh_cost`], a Mehlhorn
    /// shadow-solve at `O(E log V)`) by this factor. Unlike
    /// `resolve_after_repairs` — which bounds drift by *count*, firing on
    /// the Nth repair whether or not the tree actually drifted — this
    /// fires only when drift is *measured*:
    /// `repaired_cost > ratio × fresh_cost`. `None` disables the trigger
    /// (the default: the counter guard alone, pre-trigger behaviour).
    /// Values just above 1.0 are aggressive (re-solve on any measurable
    /// drift); the fault-storm sweep in
    /// `flexsched-bench/tests/repair_differential.rs` exercises
    /// {1.05, 1.25, 2.0} alongside the counter guard.
    pub resolve_on_cost_ratio: Option<f64>,
    /// Retry budget for the reschedule path: when set, a consideration
    /// whose caller-tracked `retry_attempts` counter has exhausted
    /// [`RetryPolicy::max_attempts`] returns
    /// [`RescheduleVerdict::Shed`] instead of proposing again — the task
    /// is released rather than livelocked through endless failed
    /// migrations. `None` (the default) keeps the pre-overload behaviour:
    /// the caller retries forever.
    pub retry: Option<RetryPolicy>,
}

/// Default repair-drift bound (see
/// [`ReschedulePolicy::resolve_after_repairs`]): storms long enough to
/// repair one schedule this many times in a row are where drift becomes
/// measurable, while forcing a full re-solve once per this many repairs
/// adds (1/8)·(re-solve − repair) ≈ 12% to the mean rescheduling decision.
pub const RESOLVE_AFTER_REPAIRS: u32 = 8;

impl Default for ReschedulePolicy {
    fn default() -> Self {
        ReschedulePolicy {
            // SDN flow-rule + ROADM reconfiguration: a few milliseconds.
            interruption_ns: 5_000_000,
            threshold: 1.5,
            prefer_repair: true,
            resolve_after_repairs: Some(RESOLVE_AFTER_REPAIRS),
            resolve_on_cost_ratio: None,
            retry: None,
        }
    }
}

impl ReschedulePolicy {
    /// The pre-repair policy: every reschedule is a full re-solve.
    pub fn full_resolve() -> Self {
        ReschedulePolicy {
            prefer_repair: false,
            ..Self::default()
        }
    }

    /// The overload-degraded variant of this policy: identical knobs but
    /// no repair shadow-solves — the weight-drift trigger (a Mehlhorn
    /// estimate per considered repair) is the expensive part of a
    /// consideration, so a tripped admission watermark turns it off for
    /// non-critical tasks until load drains.
    pub fn degraded(&self) -> Self {
        ReschedulePolicy {
            resolve_on_cost_ratio: None,
            ..self.clone()
        }
    }
}

/// Outcome of a rescheduling consideration.
#[derive(Debug)]
pub enum RescheduleVerdict {
    /// Keep the current schedule (saving does not justify interruption).
    Keep {
        /// Predicted total saving that was rejected, ns (may be negative).
        rejected_saving_ns: i64,
    },
    /// Migrate to the new schedule.
    Migrate {
        /// The replacement proposal (claims not yet validated or applied —
        /// the orchestrator's committer does that).
        new_proposal: Box<Proposal>,
        /// Predicted latency saving over remaining iterations, ns.
        predicted_saving_ns: i64,
        /// Bandwidth change (new - old), Gbit/s·link (negative = saving).
        bandwidth_delta_gbps: f64,
        /// `Some(delta)` when the proposal came from the incremental
        /// repair path: the claims delta is the repair's interference
        /// footprint (together with the proposal's recorded read region),
        /// and the committer should install it through the strict,
        /// delta-scoped repair intent. `None` for full re-solves, which go
        /// through the fit-checked migration intent.
        repair_delta: Option<crate::ClaimsDelta>,
    },
    /// Give up on the task: its retry budget
    /// ([`ReschedulePolicy::retry`]) is exhausted. The caller should
    /// release the task's resources instead of considering it again —
    /// the bounded alternative to livelocking through migrations that
    /// keep losing commit races.
    Shed {
        /// Failed attempts that exhausted the budget.
        attempts: u32,
    },
}

/// The weight-drift trigger rule, shared by [`consider`] and the
/// fault-storm differential harness so both always test the same policy:
/// with `ratio` set, a repair is *drifted* — and must be abandoned for a
/// full re-solve — when its repaired broadcast tree costs more than
/// `ratio ×` the scheduler's fresh-cost estimate
/// ([`Scheduler::estimate_fresh_cost`], a Mehlhorn shadow-solve under the
/// repair's exact weight regime). `None`, a path-plan repair, or an
/// unavailable estimate never trips.
pub fn repair_cost_drifted(
    ratio: Option<f64>,
    scheduler: &dyn Scheduler,
    task: &AiTask,
    current: &Schedule,
    repair: &crate::RepairProposal,
    snapshot: &NetworkSnapshot,
    scratch: &mut ScratchPool,
) -> bool {
    let Some(ratio) = ratio else {
        return false;
    };
    let repaired_cost = match &repair.proposal.schedule.broadcast {
        crate::RoutingPlan::Tree { tree, .. } => tree.total_weight,
        _ => 0.0,
    };
    matches!(
        scheduler.estimate_fresh_cost(task, current, snapshot, scratch),
        Ok(Some(fresh)) if fresh.is_finite() && repaired_cost > ratio * fresh
    )
}

/// Consider rescheduling `task` (currently running `current`, with
/// `remaining_iterations` left) under fresh network conditions.
/// `repairs_since_resolve` is the task's consecutive-repair counter (the
/// orchestrator's database maintains it); once it reaches
/// [`ReschedulePolicy::resolve_after_repairs`] the repair path is skipped
/// for this consideration, so a drifted tree gets rebuilt from scratch.
/// `retry_attempts` is the caller-tracked count of this task's failed
/// migration attempts (committer rejections of earlier `Migrate`
/// verdicts); with [`ReschedulePolicy::retry`] set, an exhausted budget
/// short-circuits to [`RescheduleVerdict::Shed`] before any proposal work.
///
/// `state` must be the live network state *with `current` applied*;
/// `optical` is the live optical state when the scenario models
/// wavelengths — the repair path needs it to see soft failures (a
/// spectrally dead fiber is invisible to the IP layer) and to stamp its
/// claims with live spectrum versions for the strict migration gate. With
/// [`ReschedulePolicy::prefer_repair`], a broken tree is repaired
/// incrementally against the live snapshot and migration is unconditional;
/// otherwise (or when repair does not apply) the candidate is proposed
/// against a snapshot of a hypothetical state where the task's own
/// reservations are released, gated by the interruption trade-off. The live
/// state is never mutated — every `apply` here runs on a private clone to
/// price a candidate. A `Migrate` verdict hands back a [`Proposal`] for the
/// orchestrator's committer to validate and install.
#[allow(clippy::too_many_arguments)]
pub fn consider(
    policy: &ReschedulePolicy,
    scheduler: &dyn Scheduler,
    task: &AiTask,
    current: &Schedule,
    remaining_iterations: u32,
    repairs_since_resolve: u32,
    retry_attempts: u32,
    state: &NetworkState,
    optical: Option<&flexsched_optical::OpticalState>,
    cluster: &ClusterManager,
    transport: &Transport,
    scratch: &mut ScratchPool,
) -> Result<RescheduleVerdict> {
    // Retry-budget gate: an exhausted task is shed before any proposal
    // work — no speculation, no pricing clone.
    if let Some(retry) = &policy.retry {
        if retry.exhausted(retry_attempts) {
            return Ok(RescheduleVerdict::Shed {
                attempts: retry_attempts,
            });
        }
    }

    // Current cost under today's conditions.
    let current_report = evaluate_schedule(task, current, state, cluster, transport)?;

    // Repair-drift guard: a schedule repaired too many consecutive times
    // skips straight to the full re-solve, which rebuilds the tree fresh.
    let drift_tripped = policy
        .resolve_after_repairs
        .is_some_and(|n| repairs_since_resolve >= n);

    // Repair path: live snapshot, incremental surgery, unconditional
    // migration. Any failure (no tree damage, orphan unreachable, rate
    // below floor, or a tripped weight-drift trigger) falls through to the
    // full re-solve below.
    if policy.prefer_repair && !drift_tripped {
        let mut live_snap = NetworkSnapshot::capture(state);
        if let Some(opt) = optical {
            live_snap = live_snap.with_optical(opt);
        }
        if let Ok(Some(repair)) = scheduler.propose_repair(task, current, &live_snap, scratch) {
            // Weight-drift trigger: only real, measured drift sends the
            // decision down the full re-solve path. Checked before the
            // pricing clone below, which a drifted repair never needs.
            if !repair_cost_drifted(
                policy.resolve_on_cost_ratio,
                scheduler,
                task,
                current,
                &repair,
                &live_snap,
                scratch,
            ) {
                let mut with_candidate = state.clone();
                current.release(&mut with_candidate)?;
                // Pricing only: the committer re-validates the claims at
                // migration time; a candidate that no longer applies
                // cleanly here would be rejected there too.
                if repair.proposal.schedule.apply(&mut with_candidate).is_ok() {
                    let candidate_report = evaluate_schedule(
                        task,
                        &repair.proposal.schedule,
                        &with_candidate,
                        cluster,
                        transport,
                    )?;
                    let per_iter_saving = current_report.iteration_ns() as i64
                        - candidate_report.iteration_ns() as i64;
                    let bandwidth_delta_gbps = repair
                        .proposal
                        .schedule
                        .total_bandwidth_gbps(state.topo())?
                        - current.total_bandwidth_gbps(state.topo())?;
                    return Ok(RescheduleVerdict::Migrate {
                        predicted_saving_ns: per_iter_saving * i64::from(remaining_iterations),
                        bandwidth_delta_gbps,
                        new_proposal: Box::new(repair.proposal),
                        repair_delta: Some(repair.delta),
                    });
                }
            }
        }
    }

    // Full re-solve path: hypothetical world without our reservations.
    // The optical view (when the scenario has one) rides along so the
    // candidate avoids spectrally dead fibers and carries spectrum claims,
    // exactly like the repair path above.
    let mut without_us = state.clone();
    current.release(&mut without_us)?;
    let candidate = {
        let mut snap = NetworkSnapshot::capture(&without_us);
        if let Some(opt) = optical {
            snap = snap.with_optical(opt);
        }
        scheduler.propose(task, &current.selected_locals, &snap, scratch)?
    };
    let mut with_candidate = without_us.clone();
    candidate.schedule.apply(&mut with_candidate)?;
    let candidate_report = evaluate_schedule(
        task,
        &candidate.schedule,
        &with_candidate,
        cluster,
        transport,
    )?;

    let per_iter_saving =
        current_report.iteration_ns() as i64 - candidate_report.iteration_ns() as i64;
    let total_saving = per_iter_saving * i64::from(remaining_iterations);
    let cost = (policy.interruption_ns as f64 * policy.threshold) as i64;

    if total_saving > cost {
        let bandwidth_delta_gbps = candidate.schedule.total_bandwidth_gbps(state.topo())?
            - current.total_bandwidth_gbps(state.topo())?;
        Ok(RescheduleVerdict::Migrate {
            new_proposal: Box::new(candidate),
            predicted_saving_ns: total_saving,
            bandwidth_delta_gbps,
            repair_delta: None,
        })
    } else {
        Ok(RescheduleVerdict::Keep {
            rejected_saving_ns: total_saving,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedSpff;
    use crate::flexible::FlexibleMst;
    use flexsched_compute::{ModelProfile, ServerSpec};
    use flexsched_simnet::DirLink;
    use flexsched_task::TaskId;
    use flexsched_topo::{builders, Direction};
    use std::sync::Arc;

    fn rig() -> (NetworkState, ClusterManager, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let cluster = ClusterManager::from_topology(&topo, ServerSpec::default());
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=8].to_vec(),
            data_utility: Default::default(),
            iterations: 10,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        (state, cluster, task)
    }

    fn schedule_with(sched: &dyn Scheduler, state: &NetworkState, task: &AiTask) -> Schedule {
        let snap = NetworkSnapshot::capture(state);
        sched
            .propose_once(task, &task.local_sites, &snap)
            .unwrap()
            .schedule
    }

    #[test]
    fn stable_network_keeps_schedule() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let verdict = consider(
            &ReschedulePolicy::default(),
            &sched,
            &task,
            &current,
            8,
            0,
            0,
            &state,
            None,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert!(
            matches!(verdict, RescheduleVerdict::Keep { .. }),
            "nothing changed; migration would be pure interruption"
        );
    }

    #[test]
    fn link_failure_triggers_migration() {
        let (mut state, cluster, task) = rig();
        let sched = FixedSpff;
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();

        // Cut a core ring span (ROADM-to-ROADM) the schedule uses: the
        // current schedule stalls while a rerouted candidate detours the
        // ring around the failure.
        let core = current
            .reservations(state.topo())
            .unwrap()
            .into_iter()
            .map(|(dl, _)| dl)
            .find(|dl| {
                let l = state.topo().link(dl.link).unwrap();
                let a = state.topo().node(l.a).unwrap().kind;
                let b = state.topo().node(l.b).unwrap().kind;
                a == flexsched_topo::NodeKind::Roadm && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        state.set_down(core.link, true).unwrap();

        let verdict = consider(
            &ReschedulePolicy {
                interruption_ns: 1_000,
                threshold: 1.0,
                resolve_after_repairs: None,
                ..ReschedulePolicy::default()
            },
            &sched,
            &task,
            &current,
            10,
            0,
            0,
            &state,
            None,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        match verdict {
            RescheduleVerdict::Migrate {
                predicted_saving_ns,
                new_proposal,
                ..
            } => {
                assert!(predicted_saving_ns > 0);
                for (dl, _) in new_proposal.schedule.reservations(state.topo()).unwrap() {
                    assert_ne!(dl.link, core.link, "candidate must avoid the cut link");
                }
                // The migration hands the committer validated claims too.
                assert!(!new_proposal.claims.links.is_empty());
            }
            RescheduleVerdict::Keep { rejected_saving_ns } => {
                panic!("expected migration, saving was {rejected_saving_ns}")
            }
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
    }

    #[test]
    fn link_failure_repairs_tree_schedules() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let victim = current
            .reservations(state.topo())
            .unwrap()
            .into_iter()
            .map(|(dl, _)| dl.link)
            .find(|l| {
                let link = state.topo().link(*l).unwrap();
                let a = state.topo().node(link.a).unwrap().kind;
                let b = state.topo().node(link.b).unwrap().kind;
                a == flexsched_topo::NodeKind::Roadm && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        state.set_down(victim, true).unwrap();
        let verdict = consider(
            &ReschedulePolicy::default(),
            &sched,
            &task,
            &current,
            8,
            0,
            0,
            &state,
            None,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        match verdict {
            RescheduleVerdict::Migrate {
                repair_delta,
                new_proposal,
                ..
            } => {
                assert!(
                    repair_delta.is_some(),
                    "tree schedules must take the repair path"
                );
                for (dl, _) in new_proposal.schedule.reservations(state.topo()).unwrap() {
                    assert_ne!(dl.link, victim);
                }
                // Repair claims speculate against the live state, so their
                // stamps match it — the strict migration gate's contract.
                for c in &new_proposal.claims.links {
                    assert_eq!(c.seen_version, state.link_version(c.link.link));
                }
            }
            RescheduleVerdict::Keep { .. } => panic!("broken tree must migrate"),
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
    }

    #[test]
    fn optical_soft_failure_triggers_repair() {
        use flexsched_optical::{softfail, OpticalState, SoftFailure};
        let (mut state, cluster, task) = rig();
        let mut optical = OpticalState::new(state.topo_arc());
        let sched = FlexibleMst::paper();
        let current = {
            let snap = NetworkSnapshot::capture(&state).with_optical(&optical);
            sched
                .propose_once(&task, &task.local_sites, &snap)
                .unwrap()
                .schedule
        };
        current.apply(&mut state).unwrap();
        // Kill every wavelength of a claimed WDM ring span: the link stays
        // up at the IP layer but can no longer carry the task optically.
        let victim = current
            .reservations(state.topo())
            .unwrap()
            .into_iter()
            .map(|(dl, _)| dl.link)
            .find(|l| {
                let link = state.topo().link(*l).unwrap();
                let a = state.topo().node(link.a).unwrap().kind;
                let b = state.topo().node(link.b).unwrap().kind;
                link.wavelengths > 1
                    && a == flexsched_topo::NodeKind::Roadm
                    && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        let grid = state.topo().link(victim).unwrap().wavelengths;
        softfail::apply(
            &mut optical,
            SoftFailure {
                link: victim,
                severity: grid,
            },
        )
        .unwrap();
        let verdict = consider(
            &ReschedulePolicy::default(),
            &sched,
            &task,
            &current,
            8,
            0,
            0,
            &state,
            Some(&optical),
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        match verdict {
            RescheduleVerdict::Migrate {
                repair_delta,
                new_proposal,
                ..
            } => {
                assert!(
                    repair_delta.is_some(),
                    "soft failures must take the repair path"
                );
                for (dl, _) in new_proposal.schedule.reservations(state.topo()).unwrap() {
                    assert_ne!(dl.link, victim, "repair must leave the dead fiber");
                }
                assert!(
                    !new_proposal.claims.wavelengths.is_empty(),
                    "repair against an optical view must carry spectrum claims"
                );
            }
            RescheduleVerdict::Keep { .. } => panic!("spectrally dead span must migrate"),
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
    }

    #[test]
    fn drift_guard_forces_full_resolve_when_counter_trips() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let victim = current
            .reservations(state.topo())
            .unwrap()
            .into_iter()
            .map(|(dl, _)| dl.link)
            .find(|l| {
                let link = state.topo().link(*l).unwrap();
                let a = state.topo().node(link.a).unwrap().kind;
                let b = state.topo().node(link.b).unwrap().kind;
                a == flexsched_topo::NodeKind::Roadm && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        state.set_down(victim, true).unwrap();
        let policy = ReschedulePolicy {
            interruption_ns: 1_000,
            threshold: 1.0,
            resolve_after_repairs: Some(3),
            ..ReschedulePolicy::default()
        };
        let verdict = |repairs: u32| {
            consider(
                &policy,
                &sched,
                &task,
                &current,
                8,
                repairs,
                0,
                &state,
                None,
                &cluster,
                &Transport::tcp(),
                &mut ScratchPool::new(),
            )
            .unwrap()
        };
        // Below the bound the repair path still runs...
        match verdict(2) {
            RescheduleVerdict::Migrate { repair_delta, .. } => {
                assert!(
                    repair_delta.is_some(),
                    "counter below bound must still repair"
                )
            }
            RescheduleVerdict::Keep { .. } => panic!("broken tree must migrate"),
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
        // ...at the bound the same consideration is forced to re-solve.
        match verdict(3) {
            RescheduleVerdict::Migrate { repair_delta, .. } => {
                assert!(
                    repair_delta.is_none(),
                    "tripped counter must force a full re-solve"
                )
            }
            RescheduleVerdict::Keep { .. } => panic!("broken tree must migrate"),
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
    }

    #[test]
    fn cost_ratio_trigger_routes_measured_drift_to_full_resolve() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let victim = current
            .reservations(state.topo())
            .unwrap()
            .into_iter()
            .map(|(dl, _)| dl.link)
            .find(|l| {
                let link = state.topo().link(*l).unwrap();
                let a = state.topo().node(link.a).unwrap().kind;
                let b = state.topo().node(link.b).unwrap().kind;
                a == flexsched_topo::NodeKind::Roadm && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        state.set_down(victim, true).unwrap();
        let verdict = |ratio: Option<f64>| {
            consider(
                &ReschedulePolicy {
                    interruption_ns: 1_000,
                    threshold: 1.0,
                    resolve_after_repairs: None,
                    resolve_on_cost_ratio: ratio,
                    ..ReschedulePolicy::default()
                },
                &sched,
                &task,
                &current,
                8,
                0,
                0,
                &state,
                None,
                &cluster,
                &Transport::tcp(),
                &mut ScratchPool::new(),
            )
            .unwrap()
        };
        // A generous ratio sees no measurable drift: the repair stands.
        match verdict(Some(1_000.0)) {
            RescheduleVerdict::Migrate { repair_delta, .. } => {
                assert!(repair_delta.is_some(), "loose ratio must keep the repair")
            }
            RescheduleVerdict::Keep { .. } => panic!("broken tree must migrate"),
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
        // Ratio zero trips on any positive repaired cost: the same
        // consideration is forced down the full re-solve path.
        match verdict(Some(0.0)) {
            RescheduleVerdict::Migrate { repair_delta, .. } => {
                assert!(
                    repair_delta.is_none(),
                    "zero ratio must force a full re-solve"
                )
            }
            RescheduleVerdict::Keep { .. } => panic!("broken tree must migrate"),
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
    }

    #[test]
    fn full_resolve_policy_skips_repair() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let victim = current
            .reservations(state.topo())
            .unwrap()
            .into_iter()
            .map(|(dl, _)| dl.link)
            .find(|l| {
                let link = state.topo().link(*l).unwrap();
                let a = state.topo().node(link.a).unwrap().kind;
                let b = state.topo().node(link.b).unwrap().kind;
                a == flexsched_topo::NodeKind::Roadm && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        state.set_down(victim, true).unwrap();
        let verdict = consider(
            &ReschedulePolicy {
                interruption_ns: 1_000,
                threshold: 1.0,
                ..ReschedulePolicy::full_resolve()
            },
            &sched,
            &task,
            &current,
            8,
            0,
            0,
            &state,
            None,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        match verdict {
            RescheduleVerdict::Migrate { repair_delta, .. } => {
                assert!(repair_delta.is_none(), "full_resolve must not repair");
            }
            RescheduleVerdict::Keep { .. } => panic!("broken tree must migrate"),
            RescheduleVerdict::Shed { .. } => unreachable!("no retry policy set"),
        }
    }

    #[test]
    fn high_threshold_suppresses_migration() {
        let (mut state, cluster, task) = rig();
        let sched = FixedSpff;
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let (dl0, _) = current.reservations(state.topo()).unwrap()[0];
        let residual = state.residual_gbps(dl0).unwrap();
        state.add_background(dl0, residual * 0.9).unwrap();

        let verdict = consider(
            &ReschedulePolicy {
                interruption_ns: u64::MAX / 4,
                threshold: 1_000.0,
                resolve_after_repairs: None,
                ..ReschedulePolicy::default()
            },
            &sched,
            &task,
            &current,
            2,
            0,
            0,
            &state,
            None,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert!(matches!(verdict, RescheduleVerdict::Keep { .. }));
    }

    #[test]
    fn consider_does_not_mutate_live_state() {
        let (mut state, cluster, task) = rig();
        let sched = FlexibleMst::paper();
        let current = schedule_with(&sched, &state, &task);
        current.apply(&mut state).unwrap();
        let before = state.total_reserved_gbps();
        let version_before = state.version();
        let _ = consider(
            &ReschedulePolicy::default(),
            &sched,
            &task,
            &current,
            5,
            0,
            0,
            &state,
            None,
            &cluster,
            &Transport::tcp(),
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert_eq!(state.total_reserved_gbps(), before);
        assert_eq!(state.version(), version_before, "live state must not move");
        let _ = DirLink::new(flexsched_topo::LinkId(0), Direction::AtoB);
    }
}
