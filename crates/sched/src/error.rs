//! Error type for scheduling.

use flexsched_task::TaskId;
use flexsched_topo::NodeId;
use std::fmt;

/// Errors produced while computing or applying schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum SchedError {
    /// The task cannot be scheduled right now (no feasible routing).
    Blocked {
        /// The task that failed.
        task: TaskId,
        /// Human-readable reason.
        reason: String,
    },
    /// A local site is unreachable from the global site.
    Unreachable { task: TaskId, site: NodeId },
    /// No local sites remain after selection.
    NothingSelected(TaskId),
    /// Topology-level failure.
    Topo(flexsched_topo::TopoError),
    /// Network-state failure while applying a schedule.
    Sim(flexsched_simnet::SimError),
    /// Optical-layer failure while applying a schedule.
    Optical(flexsched_optical::OpticalError),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Blocked { task, reason } => write!(f, "{task} blocked: {reason}"),
            SchedError::Unreachable { task, site } => {
                write!(f, "{task}: site {site} unreachable")
            }
            SchedError::NothingSelected(t) => write!(f, "{t}: no local models selected"),
            SchedError::Topo(e) => write!(f, "topology error: {e}"),
            SchedError::Sim(e) => write!(f, "network state error: {e}"),
            SchedError::Optical(e) => write!(f, "optical error: {e}"),
        }
    }
}

impl std::error::Error for SchedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SchedError::Topo(e) => Some(e),
            SchedError::Sim(e) => Some(e),
            SchedError::Optical(e) => Some(e),
            _ => None,
        }
    }
}

impl From<flexsched_topo::TopoError> for SchedError {
    fn from(e: flexsched_topo::TopoError) -> Self {
        SchedError::Topo(e)
    }
}

impl From<flexsched_simnet::SimError> for SchedError {
    fn from(e: flexsched_simnet::SimError) -> Self {
        SchedError::Sim(e)
    }
}

impl From<flexsched_optical::OpticalError> for SchedError {
    fn from(e: flexsched_optical::OpticalError) -> Self {
        SchedError::Optical(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = SchedError::Blocked {
            task: TaskId(3),
            reason: "no residual capacity".into(),
        };
        assert!(e.to_string().contains("task3"));
        assert!(e.to_string().contains("residual"));
        assert!(SchedError::NothingSelected(TaskId(1))
            .to_string()
            .contains("task1"));
    }

    #[test]
    fn conversions_wrap_sources() {
        let t: SchedError = flexsched_topo::TopoError::UnknownNode(NodeId(0)).into();
        assert!(matches!(t, SchedError::Topo(_)));
        let s: SchedError = flexsched_simnet::SimError::UnknownFlow(1).into();
        assert!(matches!(s, SchedError::Sim(_)));
        let o: SchedError = flexsched_optical::OpticalError::NoFreeWavelength.into();
        assert!(matches!(o, SchedError::Optical(_)));
    }
}
