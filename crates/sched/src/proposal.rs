//! Proposals: the output of the propose stage.
//!
//! A [`Proposal`] is a [`Schedule`] plus a typed [`ResourceClaims`]
//! manifest: exactly which directed link rates, wavelength feasibilities
//! and server slots the schedule needs, each stamped with the snapshot
//! version it was speculated against. Schedulers return proposals and
//! mutate nothing; the orchestrator's committer validates the claims
//! against live state and atomically applies or rejects the proposal with
//! a typed conflict.

use crate::footprint::{read_claims, Footprint, ReadClaim};
use crate::schedule::Schedule;
use crate::snapshot::NetworkSnapshot;
use crate::Result;
use flexsched_simnet::DirLink;
use flexsched_topo::{LinkId, NodeId};

/// One directed bandwidth claim: the aggregate rate this schedule needs on
/// one direction of one link (both procedures summed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkClaim {
    /// The directed link claimed.
    pub link: DirLink,
    /// Aggregate rate claimed, Gbit/s.
    pub gbps: f64,
    /// The link's mutation stamp in the snapshot the proposal was computed
    /// from. The committer's strict mode rejects the proposal when the live
    /// stamp has moved on (the claim was speculated against stale state).
    pub seen_version: u64,
}

/// One wavelength-feasibility claim: the scheduler assumed this link could
/// carry the task optically — a free wavelength to light, or an established
/// lightpath crossing it with at least `demand_gbps` of groomable headroom.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WavelengthClaim {
    /// The physical link claimed.
    pub link: LinkId,
    /// Groomable headroom required if no wavelength is free, Gbit/s.
    pub demand_gbps: f64,
    /// The link's spectrum mutation stamp in the snapshot the proposal was
    /// computed from; the committer's strict mode rejects the proposal when
    /// the live stamp has moved on.
    pub seen_version: u64,
}

/// The full manifest of resources a proposal needs. Claims are the unit of
/// commit-time validation and of conflict detection between concurrently
/// speculated proposals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ResourceClaims {
    /// Per-directed-link aggregate rates, ascending by link then direction.
    pub links: Vec<LinkClaim>,
    /// Wavelength feasibility per distinct footprint link (empty when the
    /// proposal was computed without an optical view).
    pub wavelengths: Vec<WavelengthClaim>,
    /// Server sites that must host this task's containers (global site
    /// first, then the selected locals).
    pub server_slots: Vec<NodeId>,
    /// The effective rate floor the scheduler enforced, Gbit/s: plans whose
    /// weakest flow falls below this are malformed and must be rejected.
    pub rate_floor_gbps: f64,
    /// The decision's **read region**: links whose state the scheduler
    /// consulted without claiming them (ascending, disjoint from
    /// `links`/`wavelengths`), each stamped with the snapshot versions it
    /// saw. Strict commit modes validate these stamps too, closing the
    /// read-footprint gap: a commit on a non-claimed link that could have
    /// steered this decision differently now rejects the speculation
    /// instead of silently grandfathering it in.
    pub reads: Vec<ReadClaim>,
}

/// The difference between a replacement proposal's claims and the schedule
/// it replaces: exactly which directed-link rates grow and which are
/// released. Incremental tree repair produces proposals whose delta covers
/// only the re-attached fragment, so the delta is both the unit of
/// interference analysis (which links a migration actually touches) and the
/// evidence that a repair was incremental rather than a full re-route.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClaimsDelta {
    /// Rate growth per directed link (new links, or increases on kept
    /// links), ascending by link then direction. `gbps` is the *increase*.
    pub added: Vec<LinkClaim>,
    /// Rate released per directed link (links left behind, or decreases on
    /// kept links), ascending; the value is the decrease, Gbit/s.
    pub removed: Vec<(DirLink, f64)>,
}

impl ClaimsDelta {
    /// Whether the replacement claims exactly the old reservations.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Distinct physical links the migration touches (either list, either
    /// direction), ascending.
    pub fn touched_links(&self) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self
            .added
            .iter()
            .map(|c| c.link.link)
            .chain(self.removed.iter().map(|(dl, _)| dl.link))
            .collect();
        links.sort_unstable();
        links.dedup();
        links
    }
}

impl ResourceClaims {
    /// Total claimed bandwidth over all directed links, Gbit/s·link.
    pub fn total_gbps(&self) -> f64 {
        self.links.iter().map(|c| c.gbps).sum()
    }

    /// Distinct physical links claimed (either direction).
    pub fn footprint(&self) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self.links.iter().map(|c| c.link.link).collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Delta of this claim-set versus the old schedule's per-directed-link
    /// aggregate (`old` ascending by directed link, as produced by
    /// aggregating `Schedule::reservations`). Links whose rate is unchanged
    /// (within 1e-9) appear in neither list.
    pub fn delta_from(&self, old: &[(DirLink, f64)]) -> ClaimsDelta {
        let mut delta = ClaimsDelta::default();
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.links.len() || j < old.len() {
            let new_claim = self.links.get(i);
            let old_claim = old.get(j);
            match (new_claim, old_claim) {
                (Some(c), Some(&(dl, gbps))) if c.link == dl => {
                    let diff = c.gbps - gbps;
                    if diff > 1e-9 {
                        delta.added.push(LinkClaim { gbps: diff, ..*c });
                    } else if diff < -1e-9 {
                        delta.removed.push((dl, -diff));
                    }
                    i += 1;
                    j += 1;
                }
                (Some(c), Some(&(dl, _))) if c.link < dl => {
                    delta.added.push(*c);
                    i += 1;
                }
                (Some(c), None) => {
                    delta.added.push(*c);
                    i += 1;
                }
                (_, Some(&(dl, gbps))) => {
                    delta.removed.push((dl, gbps));
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        delta
    }
}

/// A complete scheduling proposal: the schedule itself plus the claims the
/// committer must validate, and the snapshot versions it speculated against.
#[derive(Debug, Clone)]
pub struct Proposal {
    /// The schedule to install if the claims validate.
    pub schedule: Schedule,
    /// The resources the schedule needs.
    pub claims: ResourceClaims,
    /// Global IP-layer snapshot version the proposal was computed from.
    pub snapshot_version: u64,
    /// Optical snapshot version, when an optical view was attached.
    pub optical_version: Option<u64>,
}

impl Proposal {
    /// Assemble a proposal with a **conservative** read region: every
    /// topology link the schedule does not claim. Sound for any scheduler
    /// (nothing consulted can be missing), at the cost of treating the
    /// decision as having read the whole fabric — any prior commit
    /// invalidates it under strict validation. Schedulers that record
    /// their searches' consulted links (the flexible scheduler and the
    /// repair path do, via the scratch pool's
    /// [`ReadLog`](flexsched_topo::algo::ReadLog)) should use
    /// [`assemble_with_reads`](Proposal::assemble_with_reads) for a
    /// precise region instead.
    pub fn assemble(schedule: Schedule, snap: &NetworkSnapshot) -> Result<Self> {
        let all: Vec<LinkId> = (0..snap.topo().link_count() as u32).map(LinkId).collect();
        Self::assemble_with_reads(schedule, snap, &all)
    }

    /// Assemble a proposal from a freshly computed schedule: walk its
    /// reservations once, aggregate per directed link, stamp each claim
    /// with the snapshot's per-link version, and record `consulted` (the
    /// decision's consulted links, any order, claimed links filtered out)
    /// as the stamped read region.
    ///
    /// Kept allocation-light (sort + in-place merge, no maps) because it
    /// runs once per scheduling decision on the control-plane hot path.
    pub fn assemble_with_reads(
        schedule: Schedule,
        snap: &NetworkSnapshot,
        consulted: &[LinkId],
    ) -> Result<Self> {
        let links: Vec<LinkClaim> = schedule
            .aggregated_reservations(snap.topo())?
            .into_iter()
            .map(|(dl, gbps)| LinkClaim {
                link: dl,
                gbps,
                seen_version: snap.net().link_version(dl.link),
            })
            .collect();
        let mut footprint: Vec<LinkId> = links.iter().map(|c| c.link.link).collect();
        footprint.dedup(); // links are sorted by (link, dir) already
        let wavelengths = if let Some(opt) = snap.optical() {
            footprint
                .iter()
                .map(|link| WavelengthClaim {
                    link: *link,
                    demand_gbps: schedule.demand_gbps,
                    seen_version: opt.link_version(*link),
                })
                .collect()
        } else {
            Vec::new()
        };
        let reads = read_claims(snap, consulted, &footprint);
        let mut server_slots = Vec::with_capacity(schedule.selected_locals.len() + 1);
        server_slots.push(schedule.global_site);
        server_slots.extend_from_slice(&schedule.selected_locals);
        Ok(Proposal {
            claims: ResourceClaims {
                links,
                wavelengths,
                server_slots,
                rate_floor_gbps: snap.min_rate_gbps.min(schedule.demand_gbps),
                reads,
            },
            snapshot_version: snap.version(),
            optical_version: snap.optical_version(),
            schedule,
        })
    }

    /// The task this proposal schedules.
    pub fn task(&self) -> flexsched_task::TaskId {
        self.schedule.task
    }

    /// The proposal's interference [`Footprint`]: claimed links as the
    /// write set, the recorded read region as the read set.
    pub fn footprint(&self) -> Footprint {
        Footprint::of_proposal(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FixedSpff, FlexibleMst, Scheduler};
    use flexsched_compute::ModelProfile;
    use flexsched_simnet::NetworkState;
    use flexsched_task::{AiTask, TaskId};
    use flexsched_topo::builders;
    use std::sync::Arc;

    fn rig(locals: usize) -> (NetworkState, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=locals].to_vec(),
            data_utility: Default::default(),
            iterations: 3,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        (state, task)
    }

    #[test]
    fn claims_aggregate_reservations_per_directed_link() {
        let (state, task) = rig(6);
        let snap = NetworkSnapshot::capture(&state);
        let p = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        // Claims must sum to exactly the schedule's reservation total.
        let total: f64 = p
            .schedule
            .reservations(state.topo())
            .unwrap()
            .iter()
            .map(|(_, r)| r)
            .sum();
        assert!((p.claims.total_gbps() - total).abs() < 1e-9);
        // Aggregation: no directed link appears twice.
        for w in p.claims.links.windows(2) {
            assert!(w[0].link < w[1].link, "claims must be strictly ascending");
        }
    }

    #[test]
    fn footprint_matches_schedule_footprint() {
        let (state, task) = rig(8);
        let snap = NetworkSnapshot::capture(&state);
        let p = FlexibleMst::paper()
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        assert_eq!(
            p.claims.footprint().len(),
            p.schedule.footprint_links(state.topo()).unwrap()
        );
    }

    #[test]
    fn wavelength_claims_only_with_optical_view() {
        let (state, task) = rig(4);
        let snap = NetworkSnapshot::capture(&state);
        let p = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        assert!(p.claims.wavelengths.is_empty());
        assert!(p.optical_version.is_none());

        let optical = flexsched_optical::OpticalState::new(state.topo_arc());
        let snap = NetworkSnapshot::capture(&state).with_optical(&optical);
        let p = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        assert_eq!(p.claims.wavelengths.len(), p.claims.footprint().len());
        assert_eq!(p.optical_version, Some(optical.version()));
        for w in &p.claims.wavelengths {
            assert!((w.demand_gbps - task.demand_gbps()).abs() < 1e-12);
        }
    }

    #[test]
    fn server_slots_cover_global_and_locals() {
        let (state, task) = rig(5);
        let snap = NetworkSnapshot::capture(&state);
        let p = FlexibleMst::paper()
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        assert_eq!(p.claims.server_slots[0], task.global_site);
        assert_eq!(&p.claims.server_slots[1..], task.local_sites.as_slice());
        assert_eq!(p.task(), task.id);
    }

    #[test]
    fn read_region_is_stamped_and_disjoint_from_claims() {
        let (state, task) = rig(8);
        let optical = flexsched_optical::OpticalState::new(state.topo_arc());
        let snap = NetworkSnapshot::capture(&state).with_optical(&optical);
        let p = FlexibleMst::paper()
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        // The flexible scheduler records a real (non-empty) read region:
        // its searches consult links beyond the final claim footprint.
        assert!(!p.claims.reads.is_empty(), "searches must record reads");
        let footprint = p.claims.footprint();
        for (w, r) in p.claims.reads.windows(2).map(|w| (&w[0], &w[1])) {
            assert!(w.link < r.link, "reads must be strictly ascending");
        }
        for r in &p.claims.reads {
            assert!(
                footprint.binary_search(&r.link).is_err(),
                "read claim on {} duplicates a write claim",
                r.link
            );
            assert_eq!(r.seen_version, snap.net().link_version(r.link));
            assert_eq!(
                r.seen_spectrum,
                Some(snap.optical().unwrap().link_version(r.link))
            );
        }
        // Footprint view: writes = claimed links, reads = read region.
        let fp = p.footprint();
        assert_eq!(fp.writes, footprint);
        assert_eq!(fp.reads.len(), p.claims.reads.len());
    }

    #[test]
    fn fixed_scheduler_reads_are_conservative() {
        let (state, task) = rig(4);
        let snap = NetworkSnapshot::capture(&state);
        let p = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        // assemble() declares every non-claimed link read; no spectrum
        // stamps without an optical view.
        assert_eq!(
            p.claims.reads.len() + p.claims.footprint().len(),
            state.topo().link_count()
        );
        assert!(p.claims.reads.iter().all(|r| r.seen_spectrum.is_none()));
    }

    #[test]
    fn claim_versions_record_the_snapshot() {
        let (mut state, task) = rig(3);
        state
            .reserve(
                DirLink::new(LinkId(0), flexsched_topo::Direction::AtoB),
                1.0,
            )
            .unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let p = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        for c in &p.claims.links {
            assert_eq!(c.seen_version, snap.net().link_version(c.link.link));
        }
        assert_eq!(p.snapshot_version, snap.version());
    }
}
