//! Read-only scheduling context: what a policy may observe.

use flexsched_optical::OpticalState;
use flexsched_simnet::NetworkState;

/// The observable world for a scheduling decision — the orchestrator
/// database's view of "networking conditions".
pub struct SchedContext<'a> {
    /// IP-layer link state: reservations, background load, faults.
    pub state: &'a NetworkState,
    /// Optical-layer state, when the scenario models wavelengths. Schedulers
    /// use it to avoid routes with no free wavelength.
    pub optical: Option<&'a OpticalState>,
    /// Minimum useful per-flow rate, Gbit/s; candidate routes whose
    /// obtainable rate falls below this are treated as infeasible.
    pub min_rate_gbps: f64,
    /// How many alternate (k-shortest) paths the fixed scheduler probes
    /// before declaring a local unreachable.
    pub k_paths: usize,
}

impl<'a> SchedContext<'a> {
    /// Context with default knobs (0.5 Gbit/s floor, 3 candidate paths).
    pub fn new(state: &'a NetworkState) -> Self {
        SchedContext {
            state,
            optical: None,
            min_rate_gbps: 0.5,
            k_paths: 3,
        }
    }

    /// Attach an optical-layer view.
    pub fn with_optical(mut self, optical: &'a OpticalState) -> Self {
        self.optical = Some(optical);
        self
    }

    /// Override the rate floor.
    pub fn with_min_rate(mut self, gbps: f64) -> Self {
        self.min_rate_gbps = gbps;
        self
    }

    /// Override the candidate path count.
    pub fn with_k_paths(mut self, k: usize) -> Self {
        self.k_paths = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_topo::builders;
    use std::sync::Arc;

    #[test]
    fn builder_methods_set_fields() {
        let topo = Arc::new(builders::linear(3, 1.0, 100.0));
        let state = NetworkState::new(Arc::clone(&topo));
        let optical = OpticalState::new(topo);
        let ctx = SchedContext::new(&state)
            .with_optical(&optical)
            .with_min_rate(2.0)
            .with_k_paths(5);
        assert!(ctx.optical.is_some());
        assert_eq!(ctx.min_rate_gbps, 2.0);
        assert_eq!(ctx.k_paths, 5);
    }

    #[test]
    fn defaults_are_sane() {
        let topo = Arc::new(builders::linear(3, 1.0, 100.0));
        let state = NetworkState::new(topo);
        let ctx = SchedContext::new(&state);
        assert!(ctx.optical.is_none());
        assert_eq!(ctx.min_rate_gbps, 0.5);
        assert_eq!(ctx.k_paths, 3);
    }
}
