//! Read-only scheduling context: what a policy may observe.

use flexsched_optical::OpticalState;
use flexsched_simnet::NetworkState;
use flexsched_topo::algo::ScratchPool;
use std::cell::RefCell;

/// The observable world for a scheduling decision — the orchestrator
/// database's view of "networking conditions".
pub struct SchedContext<'a> {
    /// IP-layer link state: reservations, background load, faults.
    pub state: &'a NetworkState,
    /// Optical-layer state, when the scenario models wavelengths. Schedulers
    /// use it to avoid routes with no free wavelength.
    pub optical: Option<&'a OpticalState>,
    /// Minimum useful per-flow rate, Gbit/s; candidate routes whose
    /// obtainable rate falls below this are treated as infeasible.
    pub min_rate_gbps: f64,
    /// How many alternate (k-shortest) paths the fixed scheduler probes
    /// before declaring a local unreachable.
    pub k_paths: usize,
    /// Reusable Dijkstra scratch for the schedulers' shortest-path and
    /// Steiner-tree constructions. A context that schedules many tasks
    /// (the orchestrator keeps one per decision loop) amortises the
    /// allocation of every `dist`/`parent`/`visited` array away. Interior
    /// mutability because scheduling is logically read-only (`&ctx`).
    pub scratch: RefCell<ScratchPool>,
}

impl<'a> SchedContext<'a> {
    /// Context with default knobs (0.5 Gbit/s floor, 3 candidate paths).
    pub fn new(state: &'a NetworkState) -> Self {
        SchedContext {
            state,
            optical: None,
            min_rate_gbps: 0.5,
            k_paths: 3,
            scratch: RefCell::new(ScratchPool::new()),
        }
    }

    /// Attach an optical-layer view.
    pub fn with_optical(mut self, optical: &'a OpticalState) -> Self {
        self.optical = Some(optical);
        self
    }

    /// Seed the context with an already-warm scratch pool. Long-lived
    /// decision loops (the orchestrator's testbed) move their pool in
    /// before each decision and take it back with
    /// [`into_scratch`](SchedContext::into_scratch) after, so buffers
    /// persist across tasks.
    pub fn with_scratch(mut self, pool: ScratchPool) -> Self {
        self.scratch = RefCell::new(pool);
        self
    }

    /// Recover the scratch pool (to keep it warm for the next decision).
    pub fn into_scratch(self) -> ScratchPool {
        self.scratch.into_inner()
    }

    /// Override the rate floor.
    pub fn with_min_rate(mut self, gbps: f64) -> Self {
        self.min_rate_gbps = gbps;
        self
    }

    /// Override the candidate path count.
    pub fn with_k_paths(mut self, k: usize) -> Self {
        self.k_paths = k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_topo::builders;
    use std::sync::Arc;

    #[test]
    fn builder_methods_set_fields() {
        let topo = Arc::new(builders::linear(3, 1.0, 100.0));
        let state = NetworkState::new(Arc::clone(&topo));
        let optical = OpticalState::new(topo);
        let ctx = SchedContext::new(&state)
            .with_optical(&optical)
            .with_min_rate(2.0)
            .with_k_paths(5);
        assert!(ctx.optical.is_some());
        assert_eq!(ctx.min_rate_gbps, 2.0);
        assert_eq!(ctx.k_paths, 5);
    }

    #[test]
    fn defaults_are_sane() {
        let topo = Arc::new(builders::linear(3, 1.0, 100.0));
        let state = NetworkState::new(topo);
        let ctx = SchedContext::new(&state);
        assert!(ctx.optical.is_none());
        assert_eq!(ctx.min_rate_gbps, 0.5);
        assert_eq!(ctx.k_paths, 3);
    }
}
