//! Footprints: the first-class currency of conflict detection.
//!
//! A scheduling decision interacts with shared state in two ways:
//!
//! * it **writes** the links it claims (rates, wavelengths, server slots —
//!   the [`crate::ResourceClaims`] manifest), and
//! * it **reads** the links whose weights or spectrum state steered it —
//!   every link the Steiner searches consulted, recorded as a side effect
//!   of search by [`flexsched_topo::algo::DijkstraScratch`] and
//!   accumulated in the caller's
//!   [`ReadLog`](flexsched_topo::algo::ReadLog).
//!
//! The read region closes the gap the PR 3 witness exposed: a commit that
//! touches only *non-claimed* links can steer a fresh decision differently,
//! so claim-stamp validation alone cannot prove a speculated proposal is
//! what sequential scheduling would have produced. With the read region
//! recorded, the proof is an induction over the search trace: if no
//! consulted value changed, a fresh run of the (deterministic) scheduler
//! replays bit-identically.
//!
//! [`Footprint`] is the commit pipeline's view of a decision: a sorted
//! write set and a sorted read set of physical links. Two footprints
//! *interfere* when either one's writes touch the other's writes
//! ([`Interference::WriteWrite`]) or reads
//! ([`Interference::ReadWrite`]); disjoint footprints can commit
//! back-to-back from the same snapshot with neither invalidating the
//! other — the invariant the batch scheduler's wave ordering is built on.

use crate::proposal::{ClaimsDelta, Proposal};
use crate::snapshot::NetworkSnapshot;
use flexsched_topo::LinkId;

/// One read-region record: a link whose observable state (IP residual /
/// down flag, and — when an optical view was attached — spectrum
/// occupancy) the decision consulted without claiming it, stamped with the
/// versions it saw. The committer's strict modes reject the proposal when
/// either live stamp has moved on.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadClaim {
    /// The consulted physical link.
    pub link: LinkId,
    /// The link's IP-layer mutation stamp in the decision's snapshot.
    pub seen_version: u64,
    /// The link's spectrum mutation stamp in the decision's snapshot
    /// (`None` when the decision ran without an optical view).
    pub seen_spectrum: Option<u64>,
}

/// Build the sorted read-claim list for a decision: `consulted` (any
/// order, duplicates allowed) minus the links in `exclude_writes`
/// (ascending) — claimed links are already stamp-guarded by the write
/// claims, so keeping the two sets disjoint avoids double validation.
pub(crate) fn read_claims(
    snap: &NetworkSnapshot,
    consulted: &[LinkId],
    exclude_writes: &[LinkId],
) -> Vec<ReadClaim> {
    let mut links: Vec<LinkId> = consulted.to_vec();
    links.sort_unstable();
    links.dedup();
    links
        .into_iter()
        .filter(|l| exclude_writes.binary_search(l).is_err())
        .map(|link| ReadClaim {
            link,
            seen_version: snap.net().link_version(link),
            seen_spectrum: snap.optical().map(|opt| opt.link_version(link)),
        })
        .collect()
}

/// How two footprints step on each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interference {
    /// The write sets intersect: both decisions claim the same link.
    WriteWrite,
    /// One decision writes a link the other only read: committing the
    /// writer invalidates the reader's speculation (the PR 3 witness
    /// scenario), even though their claims are disjoint.
    ReadWrite,
}

/// A decision's interference footprint: the distinct physical links it
/// writes (claims) and the distinct links it read without claiming. Both
/// lists are ascending and mutually disjoint.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Footprint {
    /// Links the decision claims (write set), ascending.
    pub writes: Vec<LinkId>,
    /// Links the decision consulted without claiming (read region),
    /// ascending.
    pub reads: Vec<LinkId>,
}

fn sorted_intersects(a: &[LinkId], b: &[LinkId]) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl Footprint {
    /// The footprint of a fresh admission: claimed links as the write set,
    /// the proposal's recorded read region as the read set.
    pub fn of_proposal(p: &Proposal) -> Footprint {
        let mut reads: Vec<LinkId> = p.claims.reads.iter().map(|r| r.link).collect();
        reads.sort_unstable();
        reads.dedup();
        Footprint {
            writes: p.claims.footprint(),
            reads,
        }
    }

    /// The footprint of an incremental repair: the [`ClaimsDelta`] — only
    /// the links whose rates actually change — as the write set, plus the
    /// repair's (frontier-local) read region. The unchanged bulk of the
    /// tree is the task's own standing reservation and interferes with
    /// nothing. This is the same delta ∪ reads scope the committer's
    /// repair intent stamps, packaged as a partitionable footprint — the
    /// currency for the ROADMAP's footprint-aware batching of a fault
    /// tick's repair proposals (the testbed currently commits repairs one
    /// at a time).
    pub fn of_repair(p: &Proposal, delta: &ClaimsDelta) -> Footprint {
        let writes = delta.touched_links();
        let mut reads: Vec<LinkId> = p
            .claims
            .reads
            .iter()
            .map(|r| r.link)
            .filter(|l| writes.binary_search(l).is_err())
            .collect();
        reads.sort_unstable();
        reads.dedup();
        Footprint { writes, reads }
    }

    /// Classify the interference between two footprints (`None` =
    /// disjoint: the pair can commit back-to-back from one snapshot in
    /// either order without invalidating each other). Write/write
    /// dominates the classification when both kinds are present.
    pub fn interference(&self, other: &Footprint) -> Option<Interference> {
        if sorted_intersects(&self.writes, &other.writes) {
            return Some(Interference::WriteWrite);
        }
        if sorted_intersects(&self.writes, &other.reads)
            || sorted_intersects(&self.reads, &other.writes)
        {
            return Some(Interference::ReadWrite);
        }
        None
    }

    /// Whether the two footprints are pairwise disjoint (write/write *and*
    /// write/read in both directions).
    pub fn is_disjoint(&self, other: &Footprint) -> bool {
        self.interference(other).is_none()
    }

    /// Classify the footprint against a state partition: map every link
    /// through `shard_of` (the orchestrator's shard map, passed as a
    /// closure so this crate needs no knowledge of how shards are derived)
    /// and return the distinct shards the decision writes and the distinct
    /// shards it only reads — both ascending, read shards excluding write
    /// shards. A decision whose write set is one shard and whose read set
    /// adds none is *shard-local*: it can commit under that single shard's
    /// lock without coordinating with any other.
    pub fn shards(&self, shard_of: impl Fn(LinkId) -> u32) -> (Vec<u32>, Vec<u32>) {
        let mut writes: Vec<u32> = self.writes.iter().map(|l| shard_of(*l)).collect();
        writes.sort_unstable();
        writes.dedup();
        let mut reads: Vec<u32> = self
            .reads
            .iter()
            .map(|l| shard_of(*l))
            .filter(|s| writes.binary_search(s).is_err())
            .collect();
        reads.sort_unstable();
        reads.dedup();
        (writes, reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(writes: &[u32], reads: &[u32]) -> Footprint {
        Footprint {
            writes: writes.iter().map(|l| LinkId(*l)).collect(),
            reads: reads.iter().map(|l| LinkId(*l)).collect(),
        }
    }

    #[test]
    fn interference_classification() {
        let a = fp(&[1, 2], &[3, 4]);
        assert_eq!(
            a.interference(&fp(&[2, 9], &[])),
            Some(Interference::WriteWrite)
        );
        assert_eq!(
            a.interference(&fp(&[3], &[])),
            Some(Interference::ReadWrite),
            "their write hits our read"
        );
        assert_eq!(
            a.interference(&fp(&[9], &[1])),
            Some(Interference::ReadWrite),
            "our write hits their read"
        );
        assert_eq!(
            a.interference(&fp(&[9], &[4, 9])),
            None,
            "read/read is free"
        );
        assert!(a.is_disjoint(&fp(&[], &[])));
        // Write/write dominates when both overlap kinds are present.
        assert_eq!(
            a.interference(&fp(&[2], &[1])),
            Some(Interference::WriteWrite)
        );
    }

    #[test]
    fn repair_footprint_is_delta_scoped() {
        use crate::{FlexibleMst, NetworkSnapshot, Scheduler};
        use flexsched_compute::ModelProfile;
        use flexsched_simnet::NetworkState;
        use flexsched_task::{AiTask, TaskId};
        use flexsched_topo::builders;
        use std::sync::Arc;
        // A real repair: install a metro tree, cut a claimed ring span,
        // repair it, and check the repair footprint is the (small) delta
        // plus frontier reads — strictly smaller than the whole-tree
        // admission footprint, with writes and reads disjoint.
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let mut state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=10].to_vec(),
            data_utility: Default::default(),
            iterations: 3,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        let sched = FlexibleMst::paper();
        let p = sched
            .propose_once(&task, &task.local_sites, &NetworkSnapshot::capture(&state))
            .unwrap();
        p.schedule.apply(&mut state).unwrap();
        let victim = p
            .claims
            .links
            .iter()
            .map(|c| c.link.link)
            .find(|l| {
                let link = topo.link(*l).unwrap();
                topo.node(link.a).unwrap().kind == flexsched_topo::NodeKind::Roadm
                    && topo.node(link.b).unwrap().kind == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring");
        state.set_down(victim, true).unwrap();
        let rp = sched
            .propose_repair(
                &task,
                &p.schedule,
                &NetworkSnapshot::capture(&state),
                &mut flexsched_topo::algo::ScratchPool::new(),
            )
            .unwrap()
            .expect("cut tree link must repair");
        let repair_fp = Footprint::of_repair(&rp.proposal, &rp.delta);
        let admit_fp = rp.proposal.footprint();
        assert_eq!(repair_fp.writes, rp.delta.touched_links());
        assert!(
            repair_fp.writes.len() < admit_fp.writes.len(),
            "delta write set must be smaller than the whole-tree footprint"
        );
        for r in &repair_fp.reads {
            assert!(repair_fp.writes.binary_search(r).is_err());
        }
        // The frontier-local read region is a subset of the proposal's.
        assert!(repair_fp.reads.len() <= admit_fp.reads.len() + repair_fp.writes.len());
    }

    #[test]
    fn shard_classification_splits_writes_and_reads() {
        // Links 0..10 → shard link/4: write shards {0,1}, read shards add
        // only shard 2 (link 5's shard 1 is already a write shard).
        let f = fp(&[1, 2, 6], &[5, 9]);
        let (w, r) = f.shards(|l| l.0 / 4);
        assert_eq!(w, vec![0, 1]);
        assert_eq!(r, vec![2]);
        // Shard-local decision: one write shard, no foreign reads.
        let local = fp(&[1, 2, 3], &[0]);
        let (w, r) = local.shards(|l| l.0 / 4);
        assert_eq!((w.len(), r.len()), (1, 0));
    }

    #[test]
    fn interference_is_symmetric() {
        let a = fp(&[1, 5], &[2]);
        let b = fp(&[2], &[7]);
        assert_eq!(a.interference(&b), b.interference(&a));
        let c = fp(&[9], &[5]);
        assert_eq!(a.interference(&c), c.interference(&a));
    }
}
