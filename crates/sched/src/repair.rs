//! Incremental Steiner-tree repair: fix the broken subtree, keep the rest.
//!
//! The poster's rescheduling loop re-runs the full scheduler for every
//! candidate task on every fault or load change — two Steiner
//! constructions (one Dijkstra per terminal each, plus closure MST,
//! expansion and pruning) per decision. But a link fault rarely invalidates
//! a whole tree: it orphans one subtree. Repair exploits that:
//!
//! 1. **Detach.** Walk the stored [`SteinerTree`] from the root, stopping
//!    at broken edges: the surviving fragment stays, the orphaned terminals
//!    fall out, and dangling non-terminal chains are pruned.
//! 2. **Re-attach.** One *multi-source* Dijkstra — every surviving tree
//!    node is a zero-cost source — finds, under the same auxiliary weights
//!    a fresh decision would use, the cheapest attachment path from the
//!    surviving frontier to every orphaned terminal. Shared path segments
//!    merge for free because the attachment paths come from one
//!    shortest-path forest.
//! 3. **Re-rate.** Upload copies and the uniform feasible rate are
//!    recomputed over the repaired tree, *crediting* the task's own live
//!    reservations (repair proposes against the live snapshot, so the
//!    task's current claims are capacity it gets back at migration time).
//!
//! The output is a [`RepairProposal`]: a full replacement [`Proposal`]
//! (claims stamped with the live snapshot, so the strict
//! `migrate_if_current` gate can detect interference) plus the
//! [`ClaimsDelta`] proving the repair touched only the changed links.

use crate::flexible::{upload_copies, FlexibleMst};
use crate::proposal::{ClaimsDelta, Proposal};
use crate::schedule::{RoutingPlan, Schedule};
use crate::snapshot::NetworkSnapshot;
use crate::weights::auxiliary_weight;
use crate::{Result, SchedError};
use flexsched_simnet::DirLink;
use flexsched_task::AiTask;
use flexsched_topo::algo::{ScratchPool, SteinerTree};
use flexsched_topo::{LinkId, NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The set of links a repair must route around: hard faults (link down)
/// plus, when an optical view is attached, spectrally dead fibers (no free
/// wavelength and no groomable headroom for the task's demand).
#[derive(Debug, Clone)]
pub struct BrokenLinks {
    mask: Vec<bool>,
    count: usize,
}

impl BrokenLinks {
    /// No broken links over a topology of `link_count` links.
    pub fn none(link_count: usize) -> Self {
        BrokenLinks {
            mask: vec![false; link_count],
            count: 0,
        }
    }

    /// Derive the broken set from a snapshot: down links, and — with an
    /// optical view — links that can no longer carry `demand_gbps`
    /// optically (soft failures shrink the grid until this trips).
    pub fn from_snapshot(snap: &NetworkSnapshot, demand_gbps: f64) -> Self {
        let topo = snap.topo();
        let mut broken = BrokenLinks::none(topo.link_count());
        for link in topo.links() {
            let dead = snap.net().is_down(link.id)
                || snap.optical().is_some_and(|opt| {
                    !opt.has_free_wavelength(link.id).unwrap_or(false)
                        && !opt.groomable_across(link.id, demand_gbps)
                });
            if dead {
                broken.insert(link.id);
            }
        }
        broken
    }

    /// Mark one more link broken.
    pub fn insert(&mut self, link: LinkId) {
        if let Some(slot) = self.mask.get_mut(link.index()) {
            if !*slot {
                *slot = true;
                self.count += 1;
            }
        }
    }

    /// Whether `link` is broken.
    #[inline]
    pub fn contains(&self, link: LinkId) -> bool {
        self.mask.get(link.index()).copied().unwrap_or(false)
    }

    /// Whether any link is broken.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }
}

/// One repaired tree plus the surgery record.
#[derive(Debug)]
pub struct TreeRepair {
    /// The repaired tree (same root and terminal set as the original).
    pub tree: Arc<SteinerTree>,
    /// Orphaned terminals that were re-attached via the frontier search,
    /// each paired with its *anchor*: the surviving-tree node whose
    /// Voronoi region the orphan fell into (read straight off the
    /// multi-source search's per-node labels — the same Voronoi machinery
    /// the Mehlhorn sparsified closure runs, sharing one scratch pool).
    pub reattached: Vec<(NodeId, NodeId)>,
    /// Old tree links no longer present (broken links and pruned chains).
    pub dropped_links: Vec<LinkId>,
    /// Links newly introduced by the attachment paths.
    pub added_links: Vec<LinkId>,
}

/// Repair one tree against a broken-link set.
///
/// `weight` is the auxiliary weight a fresh decision would use, evaluated
/// on demand during the frontier search (it must price every broken link at
/// `f64::INFINITY` — the snapshot-derived weights do, since broken means
/// down or spectrally dead). Returns `Ok(None)` when no tree edge is
/// broken; the tree needs no surgery.
///
/// # Errors
/// [`SchedError::Unreachable`] when some orphaned terminal cannot be
/// re-attached under finite weights (the caller falls back to a full
/// re-solve, which will fail too, or blocks the task).
pub fn repair_tree(
    topo: &Topology,
    old: &SteinerTree,
    broken: &BrokenLinks,
    weight: impl Fn(LinkId) -> f64,
    task: &AiTask,
    pool: &mut ScratchPool,
) -> Result<Option<TreeRepair>> {
    if !old.links.iter().any(|l| broken.contains(*l)) {
        return Ok(None);
    }
    let mut bufs = pool.take_tree_bufs();
    let result = repair_tree_in(topo, old, broken, weight, task, pool, &mut bufs);
    pool.give_back_tree_bufs(bufs);
    result
}

fn repair_tree_in(
    topo: &Topology,
    old: &SteinerTree,
    broken: &BrokenLinks,
    weight: impl Fn(LinkId) -> f64,
    task: &AiTask,
    pool: &mut ScratchPool,
    bufs: &mut flexsched_topo::algo::TreeBufs,
) -> Result<Option<TreeRepair>> {
    let n = topo.node_count();

    // Detach: BFS from the root along unbroken tree edges only. All work
    // arrays are drawn from the pooled buffers — a fault storm makes many
    // repair decisions back to back and must not hit the allocator for
    // each one (only `parent` allocates: it is owned by the result tree).
    let alive = &mut bufs.mask;
    alive.clear();
    alive.resize(n, false);
    alive[old.root.index()] = true;
    let queue = &mut bufs.queue;
    queue.clear();
    queue.push(old.root);
    let mut head = 0;
    while head < queue.len() {
        let node = queue[head];
        head += 1;
        for child in old.children_of(node) {
            let (_, l) = old
                .parent_of(*child)
                .expect("child of a tree node has a parent edge");
            if !broken.contains(l) {
                alive[child.index()] = true;
                queue.push(*child);
            }
        }
    }

    // Surviving parent pointers, then prune dangling non-terminal chains
    // that used to lead into the orphaned subtree.
    let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; n];
    let child_count = &mut bufs.counts;
    child_count.clear();
    child_count.resize(n, 0);
    for node in &old.nodes {
        if alive[node.index()] && *node != old.root {
            let p = old.parent_of(*node).expect("non-root tree node");
            parent[node.index()] = Some(p);
            child_count[p.0.index()] += 1;
        }
    }
    let keep = &mut bufs.keep;
    keep.clear();
    keep.resize(n, false);
    keep[old.root.index()] = true;
    for t in &old.terminals {
        keep[t.index()] = true;
    }
    let prune = queue; // detach BFS is done; reuse its storage as a stack
    prune.clear();
    prune.extend(
        old.nodes
            .iter()
            .copied()
            .filter(|x| alive[x.index()] && child_count[x.index()] == 0 && !keep[x.index()]),
    );
    while let Some(leaf) = prune.pop() {
        let Some((p, _)) = parent[leaf.index()].take() else {
            continue;
        };
        alive[leaf.index()] = false;
        child_count[p.index()] -= 1;
        if child_count[p.index()] == 0 && !keep[p.index()] && alive[p.index()] && p != old.root {
            prune.push(p);
        }
    }

    // Re-attach every orphaned terminal via one multi-source search from
    // the surviving frontier — the same Voronoi-labeled pass the Mehlhorn
    // sparsified closure runs (`topo::algo::mehlhorn`), drawn from the
    // same scratch pool: every surviving node is a zero-cost source, and
    // each orphan's label names the source (its attachment anchor) whose
    // region it fell into.
    let mut orphans: Vec<NodeId> = old
        .terminals
        .iter()
        .copied()
        .filter(|t| *t != old.root && !alive[t.index()])
        .collect();
    orphans.sort_unstable();
    orphans.dedup();
    let mut reattached = Vec::with_capacity(orphans.len());
    if !orphans.is_empty() {
        let sources = &mut bufs.nodes;
        sources.clear();
        sources.extend((0..n as u32).map(NodeId).filter(|x| alive[x.index()]));
        let mut scratch = pool.take();
        let searched = scratch.run_multi(topo, sources, &weight, Some(&orphans));
        // The frontier search is the repair's whole weight-consulting
        // surface; its consulted set (small, frontier-local — the search
        // early-exits at the orphans) becomes the repair's read region.
        pool.read_log_mut().absorb(&scratch);
        let outcome = searched.map_err(SchedError::Topo).and_then(|()| {
            for t in &orphans {
                if !scratch.reachable(*t) {
                    return Err(SchedError::Unreachable {
                        task: task.id,
                        site: *t,
                    });
                }
            }
            for t in &orphans {
                let anchor = sources[scratch
                    .voronoi_label(*t)
                    .expect("settled orphan carries a Voronoi label")
                    as usize];
                debug_assert!(alive[anchor.index()], "anchor is a surviving node");
                let mut cur = *t;
                while !alive[cur.index()] {
                    let (p, l) = scratch
                        .parent_of(cur)
                        .expect("reachable non-source node has a search parent");
                    parent[cur.index()] = Some((p, l));
                    alive[cur.index()] = true;
                    cur = p;
                }
                reattached.push((*t, anchor));
            }
            Ok(())
        });
        pool.give_back(scratch);
        outcome?;
    }

    let tree = Arc::new(
        SteinerTree::from_parents(topo, old.root, old.terminals.clone(), parent, &weight)
            .map_err(SchedError::Topo)?,
    );
    let old_set: BTreeSet<LinkId> = old.links.iter().copied().collect();
    let new_set: BTreeSet<LinkId> = tree.links.iter().copied().collect();
    let dropped_links: Vec<LinkId> = old_set.difference(&new_set).copied().collect();
    let added_links: Vec<LinkId> = new_set.difference(&old_set).copied().collect();
    Ok(Some(TreeRepair {
        tree,
        reattached,
        dropped_links,
        added_links,
    }))
}

/// A repaired replacement schedule: the full proposal the committer's
/// migration gate validates, plus the claims delta showing the repair
/// touched only the changed links.
#[derive(Debug)]
pub struct RepairProposal {
    /// The replacement proposal (claims stamped against the live snapshot
    /// the repair speculated on, so `migrate_if_current` detects
    /// interference).
    pub proposal: Proposal,
    /// Directed-link rate changes versus the running schedule.
    pub delta: ClaimsDelta,
    /// Orphaned terminals re-attached (union over both trees, ascending).
    pub reattached: Vec<NodeId>,
    /// Physical links added across both trees.
    pub links_added: usize,
    /// Physical links dropped across both trees.
    pub links_dropped: usize,
}

/// Smallest `(residual + own credit) / copies` over the tree's directed
/// edges: the uniform per-update rate a migration can obtain, given that
/// the task's current reservations are freed when the new rules install.
fn feasible_rate_with_credit(
    snap: &NetworkSnapshot,
    tree: &SteinerTree,
    copies: &BTreeMap<NodeId, u32>,
    demand: f64,
    credit: &[(DirLink, f64)],
    towards_root: bool,
) -> Result<f64> {
    let topo = snap.topo();
    let mut rate = demand;
    for (child, parent, l) in tree.edges() {
        let from = if towards_root { child } else { parent };
        let link = topo.link(l).map_err(SchedError::Topo)?;
        let dir = link
            .direction_from(from)
            .ok_or(SchedError::Topo(flexsched_topo::TopoError::UnknownLink(l)))?;
        let dl = DirLink::new(l, dir);
        let own = credit
            .binary_search_by_key(&dl, |(d, _)| *d)
            .map(|i| credit[i].1)
            .unwrap_or(0.0);
        let residual = snap.net().residual_gbps(dl).unwrap_or(0.0) + own;
        let c = f64::from(copies.get(&child).copied().unwrap_or(1).max(1));
        rate = rate.min(residual / c);
    }
    Ok(rate)
}

/// Repair `current`'s trees against the faults visible in `snap` (the
/// *live* state, current schedule still installed) and assemble the
/// replacement proposal.
///
/// Returns `Ok(None)` when neither tree crosses a broken link — the
/// schedule is structurally intact and ordinary (threshold-gated)
/// rescheduling applies instead. Path-plan schedules are never repaired
/// (`Ok(None)`): the fixed scheduler re-solves, which is cheap for paths.
///
/// # Errors
/// * [`SchedError::Unreachable`] — an orphaned terminal cannot be
///   re-attached; fall back to a full re-solve.
/// * [`SchedError::Blocked`] — the repaired tree exists but its feasible
///   rate falls below the floor.
pub fn repair_schedule(
    cfg: &FlexibleMst,
    task: &AiTask,
    current: &Schedule,
    snap: &NetworkSnapshot,
    scratch: &mut ScratchPool,
) -> Result<Option<RepairProposal>> {
    let (
        RoutingPlan::Tree {
            tree: old_bcast, ..
        },
        RoutingPlan::Tree { tree: old_up, .. },
    ) = (&current.broadcast, &current.upload)
    else {
        return Ok(None);
    };
    let topo = snap.topo();
    let demand = current.demand_gbps;

    // Fast triage: is any *tree* link actually broken? This is the per-tree
    // check (O(tree links) optical probes), not a whole-topology scan — a
    // fault tick may reconsider many schedules, and most probes must be
    // cheap "no, you are fine" answers.
    let link_dead = |l: LinkId| {
        snap.net().is_down(l)
            || snap.optical().is_some_and(|opt| {
                !opt.has_free_wavelength(l).unwrap_or(false) && !opt.groomable_across(l, demand)
            })
    };
    // Triage and broken-set construction in one pass: broken-ness is only
    // ever consulted on *tree* links (the detach walks), so the set is
    // populated from the trees' footprints alone — never a whole-topology
    // optical scan on this hot path.
    let shares_tree = Arc::ptr_eq(old_bcast, old_up);
    let mut broken = BrokenLinks::none(topo.link_count());
    let up_links: &[LinkId] = if shares_tree { &[] } else { &old_up.links };
    for l in old_bcast.links.iter().chain(up_links.iter()) {
        if link_dead(*l) {
            broken.insert(*l);
        }
    }
    if broken.is_empty() {
        return Ok(None);
    }

    let credit = current.aggregated_reservations(topo)?;

    // Start the repair's read region: the frontier searches below absorb
    // their consulted links into the pool's log. The region is
    // deliberately frontier-local — it covers what steered the *graft*,
    // while the unchanged bulk of the tree is the task's own standing
    // claim and is validated (with credit) by the claims themselves.
    scratch.read_log_mut().reset();

    // Auxiliary weights exactly as a rescheduling decision sees them: every
    // link the running schedule already occupies — either tree — counts as
    // *reused* (its reservations are freed at migration time, so it stays
    // routable and costs no extra bandwidth), except the broken ones, which
    // are forced unusable. Weights are evaluated lazily inside the frontier
    // search (the search early-exits at the orphans, so most links are
    // never priced) and memoised in a pooled per-link cache, so the tree
    // rebuild's total-weight pass pays nothing extra. NaN marks a
    // not-yet-priced slot (auxiliary weights are never NaN).
    let own: BTreeSet<LinkId> = old_bcast
        .links
        .iter()
        .chain(up_links.iter())
        .copied()
        .collect();
    let mut cache = scratch.take_weights();
    cache.resize(topo.link_count(), f64::NAN);
    type RepairStage = (
        Option<TreeRepair>,
        Arc<SteinerTree>,
        Option<TreeRepair>,
        Arc<SteinerTree>,
    );
    let outcome: Result<RepairStage> = (|cache: &mut [f64], scratch: &mut ScratchPool| {
        let cache = std::cell::RefCell::new(cache);
        let priced = |cache: &std::cell::RefCell<&mut [f64]>,
                      reused: &BTreeSet<LinkId>,
                      l: LinkId| {
            let mut cache = cache.borrow_mut();
            let slot = &mut cache[l.index()];
            if slot.is_nan() {
                *slot = if broken.contains(l) {
                    f64::INFINITY
                } else {
                    match topo.link(l) {
                        Ok(link) => {
                            auxiliary_weight(snap, demand, reused, link, cfg.wavelength_headroom)
                        }
                        Err(_) => f64::INFINITY,
                    }
                };
            }
            *slot
        };
        let bcast_weight = |l: LinkId| priced(&cache, &own, l);
        let bcast_repair = repair_tree(topo, old_bcast, &broken, bcast_weight, task, scratch)?;
        let new_bcast: Arc<SteinerTree> = match &bcast_repair {
            Some(r) => Arc::clone(&r.tree),
            None => Arc::clone(old_bcast),
        };

        // Upload tree: shared-tree schedules share the repaired broadcast
        // tree; separate trees repair under the upload weights (the
        // repaired broadcast links and the upload tree's own links carry
        // the reuse discount, as in a fresh rescheduling decision). The
        // cache carries over: only the reuse set changed, so it is
        // re-primed for the union eagerly and the rest re-prices lazily.
        let (up_repair, new_up) = if shares_tree {
            (None, Arc::clone(&new_bcast))
        } else {
            let reused: BTreeSet<LinkId> =
                new_bcast.links.iter().chain(own.iter()).copied().collect();
            {
                let mut cache = cache.borrow_mut();
                for l in &reused {
                    cache[l.index()] = f64::NAN;
                }
            }
            let up_weight = |l: LinkId| priced(&cache, &reused, l);
            match repair_tree(topo, old_up, &broken, up_weight, task, scratch)? {
                Some(r) => {
                    let tree = Arc::clone(&r.tree);
                    (Some(r), tree)
                }
                None => (None, Arc::clone(old_up)),
            }
        };
        Ok((bcast_repair, new_bcast, up_repair, new_up))
    })(&mut cache, scratch);
    scratch.give_back_weights(cache);
    let (bcast_repair, new_bcast, up_repair, new_up) = outcome?;

    if bcast_repair.is_none() && up_repair.is_none() {
        return Ok(None);
    }

    let selected_set: BTreeSet<NodeId> = current.selected_locals.iter().copied().collect();
    let up_copies = upload_copies(&new_up, topo, &selected_set, cfg.aggregation)?;
    let bcast_copies: BTreeMap<NodeId, u32> = BTreeMap::new();
    let bcast_rate =
        feasible_rate_with_credit(snap, &new_bcast, &bcast_copies, demand, &credit, false)?;
    let up_rate = feasible_rate_with_credit(snap, &new_up, &up_copies, demand, &credit, true)?;
    let rate = bcast_rate.min(up_rate);
    if rate < snap.min_rate_gbps.min(demand) {
        return Err(SchedError::Blocked {
            task: task.id,
            reason: format!("repaired tree rate {rate:.3} Gbps below floor"),
        });
    }

    let schedule = Schedule {
        task: current.task,
        scheduler: current.scheduler.clone(),
        global_site: current.global_site,
        selected_locals: current.selected_locals.clone(),
        demand_gbps: demand,
        broadcast: RoutingPlan::Tree {
            tree: new_bcast,
            rate_gbps: rate,
            copies: bcast_copies,
        },
        upload: RoutingPlan::Tree {
            tree: new_up,
            rate_gbps: rate,
            copies: up_copies,
        },
    };
    let proposal = Proposal::assemble_with_reads(schedule, snap, scratch.read_log().links())?;
    let delta = proposal.claims.delta_from(&credit);

    let mut reattached: Vec<NodeId> = Vec::new();
    let mut links_added = 0;
    let mut links_dropped = 0;
    for r in [&bcast_repair, &up_repair].into_iter().flatten() {
        reattached.extend(r.reattached.iter().map(|(orphan, _)| *orphan));
        links_added += r.added_links.len();
        links_dropped += r.dropped_links.len();
    }
    reattached.sort_unstable();
    reattached.dedup();

    Ok(Some(RepairProposal {
        proposal,
        delta,
        reattached,
        links_added,
        links_dropped,
    }))
}

/// Whether a schedule's reservations cross any broken link — the trigger
/// that makes migration unconditional (keeping the schedule serves
/// nothing across a dead link).
pub fn schedule_crosses(schedule: &Schedule, broken: &BrokenLinks, topo: &Topology) -> bool {
    schedule
        .reservations(topo)
        .map(|r| r.iter().any(|(dl, _)| broken.contains(dl.link)))
        .unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;
    use flexsched_compute::ModelProfile;
    use flexsched_simnet::NetworkState;
    use flexsched_task::TaskId;
    use flexsched_topo::builders;

    fn rig(locals: usize) -> (NetworkState, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=locals].to_vec(),
            data_utility: Default::default(),
            iterations: 5,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        (state, task)
    }

    fn propose(state: &NetworkState, task: &AiTask) -> Proposal {
        let snap = NetworkSnapshot::capture(state);
        FlexibleMst::paper()
            .propose_once(task, &task.local_sites, &snap)
            .unwrap()
    }

    /// A claimed ROADM-to-ROADM ring span: cutting it leaves a detour, so
    /// the repair is exercised rather than a legitimate Unreachable.
    fn core_span(state: &NetworkState, p: &Proposal) -> LinkId {
        p.claims
            .links
            .iter()
            .map(|c| c.link.link)
            .find(|l| {
                let link = state.topo().link(*l).unwrap();
                let a = state.topo().node(link.a).unwrap().kind;
                let b = state.topo().node(link.b).unwrap().kind;
                a == flexsched_topo::NodeKind::Roadm && b == flexsched_topo::NodeKind::Roadm
            })
            .expect("metro schedules cross the WDM ring")
    }

    #[test]
    fn intact_tree_needs_no_repair() {
        let (mut state, task) = rig(8);
        let p = propose(&state, &task);
        p.schedule.apply(&mut state).unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let out = repair_schedule(
            &FlexibleMst::paper(),
            &task,
            &p.schedule,
            &snap,
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert!(out.is_none(), "no fault, no repair");
    }

    #[test]
    fn cut_link_is_routed_around_and_delta_is_local() {
        let (mut state, task) = rig(10);
        let p = propose(&state, &task);
        p.schedule.apply(&mut state).unwrap();
        // Cut a claimed core ring span (ROADM-to-ROADM): a detour exists,
        // unlike a server's single access link.
        let victim = core_span(&state, &p);
        state.set_down(victim, true).unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let rp = repair_schedule(
            &FlexibleMst::paper(),
            &task,
            &p.schedule,
            &snap,
            &mut ScratchPool::new(),
        )
        .unwrap()
        .expect("cut tree link must trigger a repair");
        // The repaired schedule avoids the victim entirely...
        for (dl, _) in rp.proposal.schedule.reservations(state.topo()).unwrap() {
            assert_ne!(dl.link, victim, "repair must avoid the cut link");
        }
        // ...spans every local...
        match &rp.proposal.schedule.broadcast {
            RoutingPlan::Tree { tree, .. } => assert!(tree.spans_all_terminals()),
            _ => panic!("repair keeps tree plans"),
        }
        // ...and its delta is a strict subset of the footprint (the repair
        // is incremental, not a re-route of everything).
        assert!(!rp.delta.is_empty());
        let touched = rp.delta.touched_links().len();
        let footprint = rp.proposal.claims.footprint().len();
        assert!(
            touched < footprint,
            "delta ({touched} links) should be smaller than the footprint ({footprint})"
        );
    }

    #[test]
    fn reattachment_anchors_are_surviving_tree_nodes() {
        // Direct tree surgery: cut a claimed core span, repair, and check
        // each re-attached orphan's Voronoi anchor really is a node of
        // the surviving fragment (old tree minus the orphaned subtree).
        let (mut state, task) = rig(10);
        let p = propose(&state, &task);
        p.schedule.apply(&mut state).unwrap();
        let victim = core_span(&state, &p);
        let RoutingPlan::Tree { tree: old, .. } = &p.schedule.broadcast else {
            panic!("tree plan expected");
        };
        if !old.links.contains(&victim) {
            return; // victim came from the upload tree; broadcast intact
        }
        let topo = state.topo();
        let mut broken = BrokenLinks::none(topo.link_count());
        broken.insert(victim);
        let weights: Vec<f64> = topo
            .links()
            .iter()
            .map(|l| {
                if l.id == victim {
                    f64::INFINITY
                } else {
                    flexsched_topo::algo::length_weight(l)
                }
            })
            .collect();
        let repair = repair_tree(
            topo,
            old,
            &broken,
            |l| weights[l.index()],
            &task,
            &mut ScratchPool::new(),
        )
        .unwrap()
        .expect("cut tree link must need surgery");
        assert!(!repair.reattached.is_empty());
        for (orphan, anchor) in &repair.reattached {
            assert!(old.terminals.contains(orphan), "orphan {orphan} unknown");
            // The anchor survived the cut: it is an old-tree node whose
            // path to the root avoids the broken link.
            assert!(old.nodes.contains(anchor), "anchor {anchor} not in tree");
            let path = old.path_from_root(*anchor).unwrap();
            assert!(
                !path.links.contains(&victim),
                "anchor {anchor} was itself orphaned"
            );
            assert!(repair.tree.depth(*orphan).is_some());
        }
    }

    #[test]
    fn repair_rate_credits_own_reservations() {
        // On an otherwise idle network the repaired rate must not be
        // depressed by the task's own live reservations.
        let (mut state, task) = rig(6);
        let p = propose(&state, &task);
        let old_rate = match &p.schedule.broadcast {
            RoutingPlan::Tree { rate_gbps, .. } => *rate_gbps,
            _ => unreachable!(),
        };
        p.schedule.apply(&mut state).unwrap();
        let victim = core_span(&state, &p);
        state.set_down(victim, true).unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let rp = repair_schedule(
            &FlexibleMst::paper(),
            &task,
            &p.schedule,
            &snap,
            &mut ScratchPool::new(),
        )
        .unwrap()
        .expect("repair");
        let new_rate = match &rp.proposal.schedule.broadcast {
            RoutingPlan::Tree { rate_gbps, .. } => *rate_gbps,
            _ => unreachable!(),
        };
        assert!(
            new_rate > old_rate * 0.5,
            "credited rate {new_rate} collapsed versus {old_rate}"
        );
    }

    #[test]
    fn repair_routes_through_its_own_saturated_links() {
        // g — a — b — t with a detour a — c — b. The schedule runs over
        // a—b; background fills t's only access link (b—t) to zero residual
        // *around* the task's own reservation. Cutting a—b orphans t: the
        // only re-attachment path crosses b—t, which is saturated — but by
        // the task itself, whose reservations are credited at migration.
        // The frontier search must treat the task's own links as routable.
        use flexsched_topo::NodeKind;
        let mut t = flexsched_topo::Topology::new();
        let g = t.add_node(NodeKind::Server, "g");
        let a = t.add_node(NodeKind::IpRouter, "a");
        let b = t.add_node(NodeKind::IpRouter, "b");
        let c = t.add_node(NodeKind::IpRouter, "c");
        let l = t.add_node(NodeKind::Server, "t");
        t.add_link(g, a, 1.0, 100.0).unwrap();
        let span = t.add_link(a, b, 1.0, 100.0).unwrap();
        t.add_link(a, c, 1.0, 100.0).unwrap();
        t.add_link(c, b, 1.0, 100.0).unwrap();
        let access = t.add_link(b, l, 1.0, 100.0).unwrap();
        let topo = Arc::new(t);
        let mut state = NetworkState::new(Arc::clone(&topo));
        let task = AiTask {
            id: TaskId(2),
            model: ModelProfile::mobilenet(),
            global_site: g,
            local_sites: vec![l],
            data_utility: Default::default(),
            iterations: 1,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        let p = propose(&state, &task);
        p.schedule.apply(&mut state).unwrap();
        // Saturate the access link around the task's own reservations.
        for dir in [
            flexsched_topo::Direction::AtoB,
            flexsched_topo::Direction::BtoA,
        ] {
            let dl = DirLink::new(access, dir);
            let res = state.residual_gbps(dl).unwrap();
            state.add_background(dl, res).unwrap();
        }
        state.set_down(span, true).unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let rp = repair_schedule(
            &FlexibleMst::paper(),
            &task,
            &p.schedule,
            &snap,
            &mut ScratchPool::new(),
        )
        .unwrap()
        .expect("repair must route through the task's own saturated access link");
        let reservations = rp.proposal.schedule.reservations(state.topo()).unwrap();
        assert!(reservations.iter().all(|(dl, _)| dl.link != span));
        assert!(
            reservations.iter().any(|(dl, _)| dl.link == access),
            "t is only reachable over its own access link"
        );
    }

    #[test]
    fn unreachable_orphan_is_a_typed_error() {
        // Linear topology: cutting the only edge to a terminal leaves no
        // re-attachment path at all.
        use flexsched_topo::NodeKind;
        let mut t = flexsched_topo::Topology::new();
        let g = t.add_node(NodeKind::Server, "g");
        let r = t.add_node(NodeKind::IpRouter, "r");
        let l = t.add_node(NodeKind::Server, "l");
        t.add_link(g, r, 1.0, 100.0).unwrap();
        let cut = t.add_link(r, l, 1.0, 100.0).unwrap();
        let topo = Arc::new(t);
        let mut state = NetworkState::new(Arc::clone(&topo));
        let task = AiTask {
            id: TaskId(1),
            model: ModelProfile::lenet(),
            global_site: g,
            local_sites: vec![l],
            data_utility: Default::default(),
            iterations: 1,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        let p = propose(&state, &task);
        p.schedule.apply(&mut state).unwrap();
        state.set_down(cut, true).unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let err = repair_schedule(
            &FlexibleMst::paper(),
            &task,
            &p.schedule,
            &snap,
            &mut ScratchPool::new(),
        )
        .unwrap_err();
        assert!(matches!(err, SchedError::Unreachable { site, .. } if site == l));
    }

    #[test]
    fn path_plans_are_not_repaired() {
        let (mut state, task) = rig(4);
        let snap = NetworkSnapshot::capture(&state);
        let p = crate::FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        p.schedule.apply(&mut state).unwrap();
        state.set_down(p.claims.links[0].link.link, true).unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let out = repair_schedule(
            &FlexibleMst::paper(),
            &task,
            &p.schedule,
            &snap,
            &mut ScratchPool::new(),
        )
        .unwrap();
        assert!(out.is_none(), "path plans fall back to a full re-solve");
    }

    #[test]
    fn broken_set_tracks_down_links() {
        let (mut state, _) = rig(3);
        state.set_down(LinkId(2), true).unwrap();
        let snap = NetworkSnapshot::capture(&state);
        let broken = BrokenLinks::from_snapshot(&snap, 1.0);
        assert!(broken.contains(LinkId(2)));
        assert!(!broken.contains(LinkId(0)));
        assert!(!broken.is_empty());
    }

    #[test]
    fn schedule_crosses_detects_broken_footprint() {
        let (state, task) = rig(5);
        let p = propose(&state, &task);
        let mut broken = BrokenLinks::none(state.topo().link_count());
        assert!(!schedule_crosses(&p.schedule, &broken, state.topo()));
        broken.insert(p.claims.links[0].link.link);
        assert!(schedule_crosses(&p.schedule, &broken, state.topo()));
    }
}
