//! The observable world of a scheduling decision: an immutable snapshot.
//!
//! [`NetworkSnapshot`] is stage one of the **snapshot → propose → commit**
//! pipeline. It bundles a frozen IP-layer view
//! ([`flexsched_simnet::NetSnapshot`]), an optional frozen optical view
//! ([`flexsched_optical::OpticalSnapshot`]) and the scheduling knobs (rate
//! floor, candidate-path count) into one `Send + Sync` value. Schedulers
//! are pure functions of snapshot + task: they may read everything here and
//! mutate nothing — all state changes flow through the orchestrator's
//! committer, which validates each proposal's claims against *live* state.
//!
//! Because the snapshot is immutable and `Arc`-shares its topology, any
//! number of worker threads can speculate schedules against the same
//! snapshot concurrently (the parallel batch scheduler does exactly this).

use flexsched_optical::{OpticalSnapshot, OpticalState};
use flexsched_simnet::{NetSnapshot, NetworkState};
use flexsched_topo::Topology;

/// Everything a scheduling policy may observe, frozen at one instant.
#[derive(Debug, Clone)]
pub struct NetworkSnapshot {
    /// Frozen IP-layer link loads (residuals, down set, mutation stamps).
    net: NetSnapshot,
    /// Frozen optical-layer occupancy, when the scenario models wavelengths.
    optical: Option<OpticalSnapshot>,
    /// Minimum useful per-flow rate, Gbit/s; candidate routes whose
    /// obtainable rate falls below this are treated as infeasible.
    pub min_rate_gbps: f64,
    /// How many alternate (k-shortest) paths the fixed scheduler probes
    /// before declaring a local unreachable.
    pub k_paths: usize,
}

impl NetworkSnapshot {
    /// Freeze `state` with default knobs (0.5 Gbit/s floor, 3 candidate
    /// paths), no optical view.
    pub fn capture(state: &NetworkState) -> Self {
        NetworkSnapshot {
            net: state.snapshot(),
            optical: None,
            min_rate_gbps: 0.5,
            k_paths: 3,
        }
    }

    /// Attach a frozen optical-layer view.
    ///
    /// Capture both layers under one database read lock when the scenario
    /// is threaded, so the two views are mutually consistent.
    pub fn with_optical(mut self, optical: &OpticalState) -> Self {
        self.optical = Some(optical.snapshot());
        self
    }

    /// Override the rate floor.
    pub fn with_min_rate(mut self, gbps: f64) -> Self {
        self.min_rate_gbps = gbps;
        self
    }

    /// Override the candidate path count.
    pub fn with_k_paths(mut self, k: usize) -> Self {
        self.k_paths = k;
        self
    }

    /// The frozen IP-layer view.
    #[inline]
    pub fn net(&self) -> &NetSnapshot {
        &self.net
    }

    /// The frozen optical-layer view, if one was attached.
    #[inline]
    pub fn optical(&self) -> Option<&OpticalSnapshot> {
        self.optical.as_ref()
    }

    /// The underlying topology.
    #[inline]
    pub fn topo(&self) -> &Topology {
        self.net.topo()
    }

    /// Global IP-layer mutation stamp this snapshot was taken at.
    #[inline]
    pub fn version(&self) -> u64 {
        self.net.version()
    }

    /// Optical mutation stamp this snapshot was taken at (`None` when no
    /// optical view is attached).
    pub fn optical_version(&self) -> Option<u64> {
        self.optical.as_ref().map(OpticalSnapshot::version)
    }
}

// The whole point of the snapshot stage: decisions may fan out across
// threads. Regressing this bound breaks the parallel batch scheduler at
// compile time, so pin it here.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<NetworkSnapshot>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_topo::builders;
    use std::sync::Arc;

    #[test]
    fn builder_methods_set_fields() {
        let topo = Arc::new(builders::linear(3, 1.0, 100.0));
        let state = NetworkState::new(Arc::clone(&topo));
        let optical = OpticalState::new(topo);
        let snap = NetworkSnapshot::capture(&state)
            .with_optical(&optical)
            .with_min_rate(2.0)
            .with_k_paths(5);
        assert!(snap.optical().is_some());
        assert_eq!(snap.min_rate_gbps, 2.0);
        assert_eq!(snap.k_paths, 5);
        assert_eq!(snap.optical_version(), Some(optical.version()));
    }

    #[test]
    fn defaults_are_sane() {
        let topo = Arc::new(builders::linear(3, 1.0, 100.0));
        let state = NetworkState::new(topo);
        let snap = NetworkSnapshot::capture(&state);
        assert!(snap.optical().is_none());
        assert!(snap.optical_version().is_none());
        assert_eq!(snap.min_rate_gbps, 0.5);
        assert_eq!(snap.k_paths, 3);
        assert_eq!(snap.version(), state.version());
    }

    #[test]
    fn snapshot_is_shareable_across_threads() {
        let topo = Arc::new(builders::linear(3, 1.0, 100.0));
        let state = NetworkState::new(topo);
        let snap = Arc::new(NetworkSnapshot::capture(&state));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let snap = Arc::clone(&snap);
                std::thread::spawn(move || snap.net().residual_min_gbps(flexsched_topo::LinkId(0)))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 100.0);
        }
    }
}
