//! Schedule representation: the output of a scheduling policy.

use crate::Result;
use flexsched_simnet::{DirLink, NetworkState};
use flexsched_task::TaskId;
use flexsched_topo::algo::SteinerTree;
use flexsched_topo::{NodeId, Path, Topology};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A path with the rate reserved on it.
#[derive(Debug, Clone, PartialEq)]
pub struct RatedPath {
    /// The route (stored in its travel direction).
    pub path: Path,
    /// Reserved rate, Gbit/s.
    pub rate_gbps: f64,
}

/// Routing for one procedure (broadcast or upload).
#[derive(Debug, Clone)]
pub enum RoutingPlan {
    /// Per-local end-to-end paths (fixed scheduler). Keys are local sites;
    /// broadcast paths run global→local, upload paths local→global.
    Paths(BTreeMap<NodeId, RatedPath>),
    /// A shared tree (flexible scheduler). Broadcast flows root→leaves,
    /// upload flows leaves→root with aggregation at branch nodes.
    Tree {
        /// The routing tree rooted at the global site. `Arc`-shared: a
        /// `SteinerTree` carries O(topology-node-count) parent/children
        /// arrays, and long-lived schedules are cloned on every database
        /// read — sharing the tree makes those clones (and the
        /// broadcast-reuses-upload case) pointer bumps instead of array
        /// copies.
        tree: Arc<SteinerTree>,
        /// Base rate reserved per model-update stream, Gbit/s.
        rate_gbps: f64,
        /// Model-update copies carried on each node's parent edge. Broadcast
        /// trees carry one copy everywhere (multicast); upload trees carry
        /// one copy below aggregation points and more above branch nodes
        /// that cannot aggregate (e.g. all-optical ROADMs). Missing entries
        /// default to 1.
        copies: BTreeMap<NodeId, u32>,
    },
}

impl RoutingPlan {
    /// Directed reservations this plan needs: `(link, direction, rate)`
    /// triples. `towards_root` selects the upload orientation for trees and
    /// is ignored for path plans (paths are already stored directed).
    pub fn reservations(&self, topo: &Topology, towards_root: bool) -> Result<Vec<(DirLink, f64)>> {
        let mut out = Vec::new();
        match self {
            RoutingPlan::Paths(map) => {
                for rp in map.values() {
                    for (i, l) in rp.path.links.iter().enumerate() {
                        let link = topo.link(*l)?;
                        let dir = link
                            .direction_from(rp.path.nodes[i])
                            .ok_or(flexsched_topo::TopoError::UnknownLink(*l))?;
                        out.push((DirLink::new(*l, dir), rp.rate_gbps));
                    }
                }
            }
            RoutingPlan::Tree {
                tree,
                rate_gbps,
                copies,
            } => {
                for n in &tree.nodes {
                    if let Some((parent, l)) = tree.parent_of(*n) {
                        let link = topo.link(l)?;
                        // Tree edge n <-> parent: broadcast travels
                        // parent->n, upload travels n->parent.
                        let from = if towards_root { *n } else { parent };
                        let dir = link
                            .direction_from(from)
                            .ok_or(flexsched_topo::TopoError::UnknownLink(l))?;
                        let c = f64::from(copies.get(n).copied().unwrap_or(1).max(1));
                        out.push((DirLink::new(l, dir), *rate_gbps * c));
                    }
                }
            }
        }
        Ok(out)
    }

    /// Sum of `rate × directed links` for this plan, Gbit/s — the bandwidth
    /// consumption the paper plots in Figure 3b.
    pub fn bandwidth_gbps(&self, topo: &Topology, towards_root: bool) -> Result<f64> {
        Ok(self
            .reservations(topo, towards_root)?
            .iter()
            .map(|(_, r)| r)
            .sum())
    }

    /// Smallest reserved rate anywhere in the plan (for reporting).
    pub fn min_rate_gbps(&self) -> f64 {
        match self {
            RoutingPlan::Paths(map) => map
                .values()
                .map(|rp| rp.rate_gbps)
                .fold(f64::INFINITY, f64::min),
            RoutingPlan::Tree { rate_gbps, .. } => *rate_gbps,
        }
    }
}

/// A complete schedule for one task: routing for both procedures.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The task scheduled.
    pub task: TaskId,
    /// Producing policy name.
    pub scheduler: String,
    /// Global-model site (tree root / path endpoint).
    pub global_site: NodeId,
    /// Local sites actually scheduled (post-selection).
    pub selected_locals: Vec<NodeId>,
    /// Bandwidth demand the task asked for, Gbit/s.
    pub demand_gbps: f64,
    /// Broadcast-procedure routing (global → locals).
    pub broadcast: RoutingPlan,
    /// Upload-procedure routing (locals → global).
    pub upload: RoutingPlan,
}

impl Schedule {
    /// All directed reservations of both procedures.
    pub fn reservations(&self, topo: &Topology) -> Result<Vec<(DirLink, f64)>> {
        let mut r = self.broadcast.reservations(topo, false)?;
        r.extend(self.upload.reservations(topo, true)?);
        Ok(r)
    }

    /// Total bandwidth held by this schedule (both procedures), Gbit/s·link.
    pub fn total_bandwidth_gbps(&self, topo: &Topology) -> Result<f64> {
        Ok(self.reservations(topo)?.iter().map(|(_, r)| r).sum())
    }

    /// Reservations aggregated per directed link, ascending — the shape the
    /// committer credits during a migration and claim deltas diff against.
    pub fn aggregated_reservations(&self, topo: &Topology) -> Result<Vec<(DirLink, f64)>> {
        let mut r = self.reservations(topo)?;
        r.sort_unstable_by_key(|x| x.0);
        let mut out: Vec<(DirLink, f64)> = Vec::with_capacity(r.len());
        for (dl, gbps) in r {
            match out.last_mut() {
                Some((last, sum)) if *last == dl => *sum += gbps,
                _ => out.push((dl, gbps)),
            }
        }
        Ok(out)
    }

    /// Reserve every directed hop on the network state. All-or-nothing: on
    /// failure, already-applied reservations are rolled back.
    ///
    /// This is the *mechanism* of the commit stage, not a policy entry
    /// point: live state is only ever mutated by the orchestrator's
    /// committer after claim validation. Schedulers never call this;
    /// rescheduling calls it on private hypothetical clones only.
    pub fn apply(&self, state: &mut NetworkState) -> Result<()> {
        let reservations = self.reservations(state.topo())?;
        let mut done: Vec<(DirLink, f64)> = Vec::with_capacity(reservations.len());
        for (dl, rate) in reservations {
            match state.reserve(dl, rate) {
                Ok(()) => done.push((dl, rate)),
                Err(e) => {
                    for (d, r) in done {
                        state
                            .release(d, r)
                            .expect("rollback of fresh reservation cannot fail");
                    }
                    return Err(e.into());
                }
            }
        }
        Ok(())
    }

    /// Release every directed hop previously applied.
    pub fn release(&self, state: &mut NetworkState) -> Result<()> {
        for (dl, rate) in self.reservations(state.topo())? {
            state.release(dl, rate)?;
        }
        Ok(())
    }

    /// Aggregation points of the upload plan: aggregation-capable branch
    /// nodes for trees (paper: "the middle and final nodes"), or just the
    /// global site for path plans (baseline aggregates only at G).
    pub fn aggregation_points(&self, topo: &Topology) -> Vec<NodeId> {
        match &self.upload {
            RoutingPlan::Paths(_) => vec![self.global_site],
            RoutingPlan::Tree { tree, .. } => tree
                .aggregation_points()
                .into_iter()
                .filter(|n| {
                    topo.node(*n)
                        .map(|node| node.kind.can_aggregate())
                        .unwrap_or(false)
                })
                .collect(),
        }
    }

    /// Number of distinct physical links the schedule touches.
    pub fn footprint_links(&self, topo: &Topology) -> Result<usize> {
        let mut set = std::collections::BTreeSet::new();
        for (dl, _) in self.reservations(topo)? {
            set.insert(dl.link);
        }
        Ok(set.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_topo::algo::{hop_weight, shortest_path, steiner_tree};
    use flexsched_topo::builders;
    use std::sync::Arc;

    fn rig() -> (Arc<Topology>, NetworkState) {
        let topo = Arc::new(builders::star(4, 1.0, 100.0));
        let state = NetworkState::new(Arc::clone(&topo));
        (topo, state)
    }

    /// Build a fixed-style schedule on a star: G = server 1, locals 2..4.
    fn fixed_schedule(topo: &Topology, rate: f64) -> Schedule {
        let g = NodeId(1);
        let locals = [NodeId(2), NodeId(3), NodeId(4)];
        let mut bcast = BTreeMap::new();
        let mut up = BTreeMap::new();
        for l in locals {
            let down = shortest_path(topo, g, l, hop_weight).unwrap();
            let upp = down.reversed();
            bcast.insert(
                l,
                RatedPath {
                    path: down,
                    rate_gbps: rate,
                },
            );
            up.insert(
                l,
                RatedPath {
                    path: upp,
                    rate_gbps: rate,
                },
            );
        }
        Schedule {
            task: TaskId(0),
            scheduler: "fixed-test".into(),
            global_site: g,
            selected_locals: locals.to_vec(),
            demand_gbps: rate,
            broadcast: RoutingPlan::Paths(bcast),
            upload: RoutingPlan::Paths(up),
        }
    }

    /// Build a tree-style schedule on the same star. Broadcast and upload
    /// share one `Arc`'d tree, as the flexible scheduler's shared-tree mode
    /// does.
    fn tree_schedule(topo: &Topology, rate: f64) -> Schedule {
        let g = NodeId(1);
        let locals = vec![NodeId(2), NodeId(3), NodeId(4)];
        let tree = Arc::new(steiner_tree(topo, g, &locals, hop_weight).unwrap());
        Schedule {
            task: TaskId(1),
            scheduler: "flex-test".into(),
            global_site: g,
            selected_locals: locals,
            demand_gbps: rate,
            broadcast: RoutingPlan::Tree {
                tree: Arc::clone(&tree),
                rate_gbps: rate,
                copies: BTreeMap::new(),
            },
            upload: RoutingPlan::Tree {
                tree,
                rate_gbps: rate,
                copies: BTreeMap::new(),
            },
        }
    }

    #[test]
    fn fixed_bandwidth_counts_every_path_hop() {
        let (topo, _) = rig();
        let s = fixed_schedule(&topo, 10.0);
        // 3 locals × 2 hops × 2 procedures × 10 Gbps = 120.
        assert!((s.total_bandwidth_gbps(&topo).unwrap() - 120.0).abs() < 1e-9);
    }

    #[test]
    fn tree_bandwidth_counts_each_edge_once_per_procedure() {
        let (topo, _) = rig();
        let s = tree_schedule(&topo, 10.0);
        // Star tree: 4 edges (hub + 3 leaves... G-hub + hub-l2,3,4) × 2 × 10.
        assert!((s.total_bandwidth_gbps(&topo).unwrap() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn tree_beats_paths_on_bandwidth() {
        let (topo, _) = rig();
        let fixed = fixed_schedule(&topo, 10.0);
        let tree = tree_schedule(&topo, 10.0);
        assert!(
            tree.total_bandwidth_gbps(&topo).unwrap() < fixed.total_bandwidth_gbps(&topo).unwrap()
        );
    }

    #[test]
    fn apply_then_release_round_trips() {
        let (topo, mut state) = rig();
        let s = fixed_schedule(&topo, 10.0);
        s.apply(&mut state).unwrap();
        assert!((state.total_reserved_gbps() - 120.0).abs() < 1e-9);
        s.release(&mut state).unwrap();
        assert!(state.total_reserved_gbps().abs() < 1e-9);
    }

    #[test]
    fn apply_is_atomic_under_shortage() {
        let (topo, mut state) = rig();
        // The hub->G link (shared by all upload paths as last hop) carries
        // 3 flows of 40 G = 120 > 100: apply must fail and roll back.
        let s = fixed_schedule(&topo, 40.0);
        assert!(s.apply(&mut state).is_err());
        assert!(state.total_reserved_gbps().abs() < 1e-9, "rollback leaked");
    }

    #[test]
    fn directions_let_broadcast_and_upload_coexist() {
        let (topo, mut state) = rig();
        // 34 G each way saturates neither direction alone (100 G cap).
        let s = fixed_schedule(&topo, 30.0);
        s.apply(&mut state).unwrap();
        s.release(&mut state).unwrap();
    }

    #[test]
    fn aggregation_points_differ_by_plan() {
        let (topo, _) = rig();
        let fixed = fixed_schedule(&topo, 1.0);
        assert_eq!(fixed.aggregation_points(&topo), vec![NodeId(1)]);
        let tree = tree_schedule(&topo, 1.0);
        let pts = tree.aggregation_points(&topo);
        assert!(pts.contains(&NodeId(1)), "root aggregates");
        assert!(
            pts.contains(&NodeId(0)),
            "hub is a branch aggregation point"
        );
    }

    #[test]
    fn footprint_counts_distinct_links() {
        let (topo, _) = rig();
        let fixed = fixed_schedule(&topo, 1.0);
        // Paths G-hub-Li touch links: (G,hub), (hub,l2), (hub,l3), (hub,l4).
        assert_eq!(fixed.footprint_links(&topo).unwrap(), 4);
        let tree = tree_schedule(&topo, 1.0);
        assert_eq!(tree.footprint_links(&topo).unwrap(), 4);
    }

    #[test]
    fn min_rate_reports_weakest_flow() {
        let (topo, _) = rig();
        let mut s = fixed_schedule(&topo, 10.0);
        if let RoutingPlan::Paths(map) = &mut s.broadcast {
            map.get_mut(&NodeId(2)).unwrap().rate_gbps = 2.5;
        }
        assert!((s.broadcast.min_rate_gbps() - 2.5).abs() < 1e-12);
    }
}
