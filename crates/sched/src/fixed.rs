//! The fixed scheduler: shortest path + first fit (SPFF).
//!
//! "The fixed scheduler considers a fixed set of direct communication links
//! between the global model and each local model. AI model weights are
//! transmitted using end-to-end links in broadcast and upload procedures,
//! and then only aggregated in the node with a global model."
//!
//! Routing: per local model, the latency-shortest path; if the optical
//! layer has no free wavelength along it, the next of `k` shortest paths is
//! probed (classic SPFF behaviour). Rates: each flow asks for the task's
//! demand, scaled down by fair sharing where this task's own flows collide
//! on a link (the incast at the global site's access link — the effect that
//! costs the baseline its latency at high local-model counts).
//!
//! The scheduler is a pure function of [`NetworkSnapshot`] + task: it reads
//! the frozen residuals and wavelength occupancy and returns a [`Proposal`]
//! whose claims the orchestrator's committer validates against live state.

use crate::error::SchedError;
use crate::proposal::Proposal;
use crate::schedule::{RatedPath, RoutingPlan, Schedule};
use crate::snapshot::NetworkSnapshot;
use crate::weights::spff_weight;
use crate::{Result, Scheduler};
use flexsched_optical::split_at_electrical;
use flexsched_simnet::{DirLink, NetSnapshot};
use flexsched_task::AiTask;
use flexsched_topo::algo::ScratchPool;
use flexsched_topo::{algo, NodeId, Path};
use std::collections::BTreeMap;

/// The SPFF baseline scheduler.
#[derive(Debug, Clone, Default)]
pub struct FixedSpff;

impl FixedSpff {
    /// Probe the k-shortest candidates for one local and return the first
    /// that is wavelength-feasible (or the first candidate when the
    /// snapshot carries no optical view).
    fn route_one(&self, task: &AiTask, local: NodeId, snap: &NetworkSnapshot) -> Result<Path> {
        let candidates = algo::k_shortest_paths(
            snap.topo(),
            task.global_site,
            local,
            snap.k_paths.max(1),
            |l| spff_weight(snap, l),
        )
        .map_err(|_| SchedError::Unreachable {
            task: task.id,
            site: local,
        })?;
        let demand = task.demand_gbps();
        for cand in candidates {
            if let Some(opt) = snap.optical() {
                // A segment is feasible with a free wavelength (first fit
                // will light it) or an existing same-endpoint lightpath with
                // groomable residual capacity.
                let feasible = split_at_electrical(snap.topo(), &cand)
                    .map_err(SchedError::from)?
                    .iter()
                    .all(|seg| {
                        opt.path_has_free_wavelength(seg).unwrap_or(false)
                            || opt.groomable_between(seg.source(), seg.destination(), demand)
                    });
                if !feasible {
                    continue;
                }
            }
            return Ok(cand);
        }
        Err(SchedError::Blocked {
            task: task.id,
            reason: format!("no wavelength-feasible path to {local}"),
        })
    }
}

/// Fair-share rates for a set of directed paths that all want `demand`:
/// each flow gets `min(demand, min over its hops of residual / collisions)`
/// where `collisions` counts how many of *these* flows use the same
/// directed hop.
fn fair_share_rates(
    net: &NetSnapshot,
    paths: &BTreeMap<NodeId, Path>,
    demand: f64,
) -> Result<BTreeMap<NodeId, f64>> {
    let topo = net.topo();
    let mut multiplicity: BTreeMap<DirLink, f64> = BTreeMap::new();
    for p in paths.values() {
        for (i, l) in p.links.iter().enumerate() {
            let dir = topo
                .link(*l)?
                .direction_from(p.nodes[i])
                .ok_or(flexsched_topo::TopoError::UnknownLink(*l))?;
            *multiplicity.entry(DirLink::new(*l, dir)).or_insert(0.0) += 1.0;
        }
    }
    let mut rates = BTreeMap::new();
    for (local, p) in paths {
        let mut rate = demand;
        for (i, l) in p.links.iter().enumerate() {
            let dir = topo
                .link(*l)?
                .direction_from(p.nodes[i])
                .ok_or(flexsched_topo::TopoError::UnknownLink(*l))?;
            let dl = DirLink::new(*l, dir);
            let m = multiplicity[&dl];
            let residual = net.residual_gbps(dl).map_err(SchedError::from)?;
            rate = rate.min(residual / m);
        }
        rates.insert(*local, rate);
    }
    Ok(rates)
}

impl Scheduler for FixedSpff {
    fn name(&self) -> &'static str {
        "fixed-spff"
    }

    fn propose(
        &self,
        task: &AiTask,
        selected: &[NodeId],
        snap: &NetworkSnapshot,
        _scratch: &mut ScratchPool,
    ) -> Result<Proposal> {
        if selected.is_empty() {
            return Err(SchedError::NothingSelected(task.id));
        }
        let demand = task.demand_gbps();

        // Route every local.
        let mut down_paths: BTreeMap<NodeId, Path> = BTreeMap::new();
        let mut up_paths: BTreeMap<NodeId, Path> = BTreeMap::new();
        for local in selected {
            let down = self.route_one(task, *local, snap)?;
            up_paths.insert(*local, down.reversed());
            down_paths.insert(*local, down);
        }

        // Fair-share rates per direction.
        let down_rates = fair_share_rates(snap.net(), &down_paths, demand)?;
        let up_rates = fair_share_rates(snap.net(), &up_paths, demand)?;

        // A task runs both procedures over the same circuit: use the
        // symmetric (min) rate so the reservation is honest in both
        // directions.
        let mut broadcast = BTreeMap::new();
        let mut upload = BTreeMap::new();
        for local in selected {
            let rate = down_rates[local].min(up_rates[local]);
            // Floor only bites when congestion (not a small demand) is the
            // reason the rate is low.
            if rate < snap.min_rate_gbps.min(demand) {
                return Err(SchedError::Blocked {
                    task: task.id,
                    reason: format!("fair-share rate {rate:.3} Gbps to {local} below floor"),
                });
            }
            broadcast.insert(
                *local,
                RatedPath {
                    path: down_paths[local].clone(),
                    rate_gbps: rate,
                },
            );
            upload.insert(
                *local,
                RatedPath {
                    path: up_paths[local].clone(),
                    rate_gbps: rate,
                },
            );
        }

        // Conservative read region (every non-claimed link): the k-shortest
        // candidate probes consult weights all over the fabric without the
        // scratch-level recording the Steiner searches have, so SPFF
        // proposals declare they read everything. Sound (strict commits can
        // never grandfather in a steered decision) at the cost of treating
        // any prior commit as interference — acceptable for the baseline.
        Proposal::assemble(
            Schedule {
                task: task.id,
                scheduler: self.name().into(),
                global_site: task.global_site,
                selected_locals: selected.to_vec(),
                demand_gbps: demand,
                broadcast: RoutingPlan::Paths(broadcast),
                upload: RoutingPlan::Paths(upload),
            },
            snap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_compute::ModelProfile;
    use flexsched_simnet::NetworkState;
    use flexsched_task::TaskId;
    use flexsched_topo::builders;
    use std::sync::Arc;

    fn task_on_metro(locals: usize) -> (NetworkState, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=locals].to_vec(),
            data_utility: Default::default(),
            iterations: 3,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        (state, task)
    }

    fn schedule_on(state: &NetworkState, task: &AiTask) -> Schedule {
        let snap = NetworkSnapshot::capture(state);
        FixedSpff
            .propose_once(task, &task.local_sites, &snap)
            .unwrap()
            .schedule
    }

    #[test]
    fn schedules_every_selected_local() {
        let (state, task) = task_on_metro(5);
        let s = schedule_on(&state, &task);
        match &s.broadcast {
            RoutingPlan::Paths(m) => assert_eq!(m.len(), 5),
            _ => panic!("fixed must produce per-local paths"),
        }
        assert_eq!(s.scheduler, "fixed-spff");
    }

    #[test]
    fn paths_run_between_the_right_endpoints() {
        let (state, task) = task_on_metro(4);
        let s = schedule_on(&state, &task);
        if let (RoutingPlan::Paths(down), RoutingPlan::Paths(up)) = (&s.broadcast, &s.upload) {
            for (local, rp) in down {
                assert_eq!(rp.path.source(), task.global_site);
                assert_eq!(rp.path.destination(), *local);
            }
            for (local, rp) in up {
                assert_eq!(rp.path.source(), *local);
                assert_eq!(rp.path.destination(), task.global_site);
            }
        } else {
            panic!("expected path plans");
        }
    }

    #[test]
    fn schedule_applies_cleanly() {
        let (mut state, task) = task_on_metro(6);
        let s = schedule_on(&state, &task);
        s.apply(&mut state).unwrap();
        assert!(state.total_reserved_gbps() > 0.0);
        s.release(&mut state).unwrap();
        assert!(state.total_reserved_gbps().abs() < 1e-9);
    }

    #[test]
    fn proposing_mutates_nothing() {
        let (state, task) = task_on_metro(6);
        let version_before = state.version();
        let _ = schedule_on(&state, &task);
        assert_eq!(state.version(), version_before, "proposing must not mutate");
        assert!(state.total_reserved_gbps().abs() < 1e-12);
    }

    #[test]
    fn incast_compresses_rates_as_locals_grow() {
        let (state_small, task_small) = task_on_metro(2);
        let (state_big, task_big) = task_on_metro(15);
        let small = schedule_on(&state_small, &task_small);
        let big = schedule_on(&state_big, &task_big);
        // Per-flow rate shrinks when 15 flows share the global access link.
        assert!(
            big.broadcast.min_rate_gbps() < small.broadcast.min_rate_gbps(),
            "big {} !< small {}",
            big.broadcast.min_rate_gbps(),
            small.broadcast.min_rate_gbps()
        );
    }

    #[test]
    fn bandwidth_grows_linearly_with_locals() {
        let mut prev = 0.0;
        for n in [3, 6, 9, 12] {
            let (state, task) = task_on_metro(n);
            let s = schedule_on(&state, &task);
            let bw = s.total_bandwidth_gbps(state.topo()).unwrap();
            assert!(bw > prev, "bandwidth must grow with locals");
            prev = bw;
        }
    }

    #[test]
    fn down_links_are_routed_around() {
        let (mut state, task) = task_on_metro(3);
        // Cut the first metro core ring span; routing must still succeed
        // thanks to the ring + chords.
        state.set_down(flexsched_topo::LinkId(0), true).unwrap();
        let s = schedule_on(&state, &task);
        for (dl, _) in s.reservations(state.topo()).unwrap() {
            assert_ne!(dl.link, flexsched_topo::LinkId(0));
        }
    }

    #[test]
    fn saturated_network_blocks() {
        let (mut state, task) = task_on_metro(3);
        // Saturate the global site's access link in both directions.
        let topo = state.topo_arc();
        let access = topo.neighbors(task.global_site).unwrap().first().unwrap().1;
        for dir in [
            flexsched_topo::Direction::AtoB,
            flexsched_topo::Direction::BtoA,
        ] {
            state
                .add_background(DirLink::new(access, dir), 1_000.0)
                .unwrap();
        }
        let snap = NetworkSnapshot::capture(&state);
        let err = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap_err();
        assert!(
            matches!(
                err,
                SchedError::Blocked { .. } | SchedError::Unreachable { .. }
            ),
            "{err}"
        );
    }

    #[test]
    fn empty_selection_is_rejected() {
        let (state, task) = task_on_metro(3);
        let snap = NetworkSnapshot::capture(&state);
        assert!(matches!(
            FixedSpff.propose_once(&task, &[], &snap),
            Err(SchedError::NothingSelected(_))
        ));
    }

    #[test]
    fn wavelength_pressure_diverts_to_longer_path() {
        use flexsched_optical::{OpticalState, WavelengthPolicy};
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let mut opt = OpticalState::new(Arc::clone(&topo));
        let servers = topo.servers();
        // Exhaust wavelengths on the roadm0-roadm1 core span that the
        // shortest G->L route crosses (leaving the ring detour available).
        let direct = algo::shortest_path(
            &topo,
            servers[0],
            servers[4],
            flexsched_topo::algo::latency_weight,
        )
        .unwrap();
        let roadm0 = flexsched_topo::NodeId(0);
        let roadm1 = flexsched_topo::NodeId(1);
        assert!(direct.nodes.contains(&roadm0) && direct.nodes.contains(&roadm1));
        let span = topo.find_link(roadm0, roadm1).unwrap();
        let one_hop = Path::new(vec![roadm0, roadm1], vec![span]).unwrap();
        while opt
            .establish(one_hop.clone(), WavelengthPolicy::FirstFit)
            .is_ok()
        {}
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: vec![servers[4]],
            data_utility: Default::default(),
            iterations: 1,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        let snap = NetworkSnapshot::capture(&state)
            .with_optical(&opt)
            .with_k_paths(8);
        let s = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap()
            .schedule;
        if let RoutingPlan::Paths(m) = &s.broadcast {
            let chosen = &m[&servers[4]].path;
            assert_ne!(chosen, &direct, "must divert off the exhausted route");
        }
    }
}
