//! # flexsched-sched — the paper's contribution
//!
//! Two schedulers for distributed AI tasks over a telecom/cloud network:
//!
//! * [`FixedSpff`] — the baseline: a **fixed** set of end-to-end paths
//!   between the global model and every local model, found by **s**hortest
//!   **p**ath routing with **f**irst-**f**it wavelength assignment (SPFF,
//!   the paper's ref [15] baseline). Model updates are aggregated only at
//!   the global-model node.
//! * [`FlexibleMst`] — the proposal: build auxiliary graphs for the
//!   broadcast and upload procedures, weight each link by **bandwidth
//!   consumption and latency** (links already carrying the task are free to
//!   reuse), find a **minimum spanning tree between the global and local
//!   models**, route along the tree, and **aggregate at the middle and
//!   final nodes** of the upload procedure.
//!
//! Supporting machinery:
//!
//! * [`Schedule`] / [`RoutingPlan`] — the output: rated paths or a rated
//!   tree for each procedure, with apply/release onto the network state,
//! * [`evaluate`] — per-iteration latency/bandwidth evaluation producing
//!   the [`flexsched_task::TaskReport`]s behind Figures 3a/3b,
//! * [`selection`] — local-model selection strategies (open challenge #1),
//! * [`reschedule`] — the re-scheduling trade-off policy (interruption vs
//!   bandwidth/latency saving, also open challenge #1).

pub mod context;
pub mod error;
pub mod evaluate;
pub mod fixed;
pub mod flexible;
pub mod reschedule;
pub mod schedule;
pub mod selection;
pub mod weights;

pub use context::SchedContext;
pub use error::SchedError;
pub use evaluate::evaluate_schedule;
pub use fixed::FixedSpff;
pub use flexible::FlexibleMst;
pub use reschedule::{ReschedulePolicy, RescheduleVerdict};
pub use schedule::{RatedPath, RoutingPlan, Schedule};
pub use selection::SelectionStrategy;

use flexsched_task::AiTask;
use flexsched_topo::NodeId;

/// Convenience result alias for scheduling operations.
pub type Result<T> = std::result::Result<T, SchedError>;

/// A scheduling policy: compute routing for one task against a read-only
/// view of the network. Mutation (reserving bandwidth, lighting
/// wavelengths) is the orchestrator's job via [`Schedule::apply`].
pub trait Scheduler {
    /// Stable policy name used in reports.
    fn name(&self) -> &'static str;

    /// Produce a schedule for `task` over the already-selected local sites.
    fn schedule(
        &self,
        task: &AiTask,
        selected: &[NodeId],
        ctx: &SchedContext<'_>,
    ) -> Result<Schedule>;
}
