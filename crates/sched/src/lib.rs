//! # flexsched-sched — the paper's contribution
//!
//! Two schedulers for distributed AI tasks over a telecom/cloud network:
//!
//! * [`FixedSpff`] — the baseline: a **fixed** set of end-to-end paths
//!   between the global model and every local model, found by **s**hortest
//!   **p**ath routing with **f**irst-**f**it wavelength assignment (SPFF,
//!   the paper's ref \[15\] baseline). Model updates are aggregated only at
//!   the global-model node.
//! * [`FlexibleMst`] — the proposal: build auxiliary graphs for the
//!   broadcast and upload procedures, weight each link by **bandwidth
//!   consumption and latency** (links already carrying the task are free to
//!   reuse), find a **minimum spanning tree between the global and local
//!   models**, route along the tree, and **aggregate at the middle and
//!   final nodes** of the upload procedure.
//!
//! ## The snapshot → propose → commit pipeline
//!
//! Scheduling is a three-stage pipeline:
//!
//! 1. **Snapshot** — the orchestrator freezes its view of the world into an
//!    immutable, `Send + Sync` [`NetworkSnapshot`] (frozen residuals and
//!    wavelength occupancy over an `Arc`-shared topology).
//! 2. **Propose** — a [`Scheduler`] is a *pure function* of snapshot +
//!    task: it returns a [`Proposal`] (the [`Schedule`] plus a typed
//!    [`ResourceClaims`] manifest of per-link rate, wavelength and server
//!    claims) and mutates nothing. Any number of worker threads can
//!    speculate proposals against one shared snapshot.
//! 3. **Commit** — the orchestrator's committer validates the claims
//!    against *live* state and atomically applies the schedule, or rejects
//!    the proposal with a typed conflict so the caller can re-speculate.
//!
//! Supporting machinery:
//!
//! * [`Schedule`] / [`RoutingPlan`] — the routing output: rated paths or a
//!   rated (`Arc`-shared) tree for each procedure,
//! * [`evaluate`] — per-iteration latency/bandwidth evaluation producing
//!   the [`flexsched_task::TaskReport`]s behind Figures 3a/3b,
//! * [`selection`] — local-model selection strategies (open challenge #1),
//! * [`reschedule`] — the re-scheduling trade-off policy (interruption vs
//!   bandwidth/latency saving, also open challenge #1).

pub mod dag;
pub mod error;
pub mod evaluate;
pub mod fixed;
pub mod flexible;
pub mod footprint;
pub mod proposal;
pub mod repair;
pub mod reschedule;
pub mod retry;
pub mod schedule;
pub mod selection;
pub mod snapshot;
pub mod weights;

pub use dag::JobTracker;
pub use error::SchedError;
pub use evaluate::evaluate_schedule;
pub use fixed::FixedSpff;
pub use flexible::{FlexibleMst, SPARSE_CLOSURE_THRESHOLD};
pub use footprint::{Footprint, Interference, ReadClaim};
pub use proposal::{ClaimsDelta, LinkClaim, Proposal, ResourceClaims, WavelengthClaim};
pub use repair::{BrokenLinks, RepairProposal};
pub use reschedule::{ReschedulePolicy, RescheduleVerdict, RESOLVE_AFTER_REPAIRS};
pub use retry::RetryPolicy;
pub use schedule::{RatedPath, RoutingPlan, Schedule};
pub use selection::SelectionStrategy;
pub use snapshot::NetworkSnapshot;

use flexsched_task::AiTask;
use flexsched_topo::algo::ScratchPool;
use flexsched_topo::NodeId;

/// Convenience result alias for scheduling operations.
pub type Result<T> = std::result::Result<T, SchedError>;

/// A scheduling policy: a pure function of an immutable [`NetworkSnapshot`]
/// and a task, producing a [`Proposal`] and mutating nothing. All state
/// changes flow through the orchestrator's committer, which validates the
/// proposal's claims against live state.
///
/// `Send + Sync` is part of the contract: the parallel batch scheduler
/// shares one policy across worker threads, each speculating against the
/// same snapshot with its own [`ScratchPool`].
pub trait Scheduler: Send + Sync {
    /// Stable policy name used in reports.
    fn name(&self) -> &'static str;

    /// Propose a schedule for `task` over the already-selected local sites,
    /// speculating against `snapshot`. `scratch` provides reusable
    /// Dijkstra/Steiner buffers; a long-lived decision loop (or one worker
    /// thread) keeps one pool so steady-state proposing allocates nothing.
    fn propose(
        &self,
        task: &AiTask,
        selected: &[NodeId],
        snapshot: &NetworkSnapshot,
        scratch: &mut ScratchPool,
    ) -> Result<Proposal>;

    /// Incrementally repair `current` against the faults visible in
    /// `snapshot` (the *live* state, current schedule still installed):
    /// detach broken subtrees, re-attach orphaned terminals via a
    /// frontier-restricted search, and return a [`RepairProposal`] whose
    /// claims delta covers only the changed links. `Ok(None)` means the
    /// schedule needs no structural repair (or this policy cannot repair —
    /// the default); the caller falls back to ordinary rescheduling.
    fn propose_repair(
        &self,
        _task: &AiTask,
        _current: &Schedule,
        _snapshot: &NetworkSnapshot,
        _scratch: &mut ScratchPool,
    ) -> Result<Option<RepairProposal>> {
        Ok(None)
    }

    /// Cheaply estimate what a *fresh* solve of `current`'s broadcast tree
    /// would cost under today's auxiliary weights (the task's own links
    /// credited as reused, exactly as a rescheduling decision prices them).
    /// The weight-drift trigger
    /// ([`ReschedulePolicy::resolve_on_cost_ratio`]) compares a repaired
    /// tree's cost against this estimate and forces a full re-solve only
    /// when real drift shows. `Ok(None)` means this policy has no cheap
    /// estimator (the default); the trigger then never fires.
    fn estimate_fresh_cost(
        &self,
        _task: &AiTask,
        _current: &Schedule,
        _snapshot: &NetworkSnapshot,
        _scratch: &mut ScratchPool,
    ) -> Result<Option<f64>> {
        Ok(None)
    }

    /// [`propose`](Scheduler::propose) with a throwaway scratch pool — a
    /// convenience for tests, examples and one-shot callers.
    fn propose_once(
        &self,
        task: &AiTask,
        selected: &[NodeId],
        snapshot: &NetworkSnapshot,
    ) -> Result<Proposal> {
        let mut scratch = ScratchPool::new();
        self.propose(task, selected, snapshot, &mut scratch)
    }
}
