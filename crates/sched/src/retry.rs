//! Bounded, deadline-aware retry with deterministic jittered backoff.
//!
//! Every conflicted commit and failed repair in the control plane is a
//! *retry candidate*: the world moved under the decision and a fresh
//! attempt may win. Unbounded retries livelock under sustained overload —
//! the same task re-speculates forever while new arrivals pile up — so
//! every retry loop in the repo (testbed admission, batch deferred waves,
//! reschedule/repair passes, the overload harness) budgets its attempts
//! through one [`RetryPolicy`].
//!
//! Backoff is *logical-time* exponential with deterministic jitter: the
//! jitter fraction is a hash of `(task, attempt)`, not a wall-clock RNG,
//! so one seed replays one schedule of retries bit-for-bit — the
//! admission-determinism proptests depend on this.

use flexsched_task::TaskId;

/// Bounded retry/backoff/deadline policy for conflicted decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts before the task is shed (1 = try once, never retry).
    pub max_attempts: u32,
    /// Backoff before retry `2` (the first retry), ns of logical time.
    pub base_backoff_ns: u64,
    /// Ceiling on any single backoff, ns.
    pub max_backoff_ns: u64,
    /// Per-task decision deadline, ns after arrival: once a task has been
    /// in the decision pipeline this long it is shed rather than retried,
    /// whatever its attempt budget says. `u64::MAX` disables the deadline.
    pub deadline_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_backoff_ns: 1_000_000, // 1 ms
            max_backoff_ns: 64_000_000, // 64 ms
            deadline_ns: 500_000_000,   // 500 ms
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: one attempt, then shed.
    pub fn never() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// Whether `attempts` tries have exhausted the budget.
    pub fn exhausted(&self, attempts: u32) -> bool {
        attempts >= self.max_attempts
    }

    /// Whether a decision for a task that arrived at `arrival_ns` has
    /// blown its deadline at logical time `now_ns`.
    pub fn past_deadline(&self, arrival_ns: u64, now_ns: u64) -> bool {
        now_ns.saturating_sub(arrival_ns) > self.deadline_ns
    }

    /// Backoff before attempt `attempt + 1`, given that attempt `attempt`
    /// (1-based) just failed: capped exponential
    /// `min(base · 2^(attempt−1), max)`, then *equal jitter* — half the
    /// span held, half drawn deterministically from `(task, attempt)` —
    /// so synchronised conflicters decorrelate without a wall-clock RNG.
    pub fn backoff_ns(&self, task: TaskId, attempt: u32) -> u64 {
        let exp = attempt.saturating_sub(1).min(32);
        let raw = self
            .base_backoff_ns
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ns)
            .max(1);
        let half = raw / 2;
        half + jitter_hash(task.0, attempt) % (raw - half + 1)
    }
}

/// SplitMix64 over `(task, attempt)` — a stateless, deterministic jitter
/// source (same pair, same jitter, on every replay of a seed).
fn jitter_hash(task: u64, attempt: u32) -> u64 {
    let mut z = task
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exhaustion_is_exact() {
        let p = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        assert!(!p.exhausted(0));
        assert!(!p.exhausted(2));
        assert!(p.exhausted(3));
        assert!(p.exhausted(4));
        assert!(RetryPolicy::never().exhausted(1));
    }

    #[test]
    fn backoff_grows_exponentially_then_caps() {
        let p = RetryPolicy {
            base_backoff_ns: 1_000,
            max_backoff_ns: 16_000,
            ..RetryPolicy::default()
        };
        let t = TaskId(7);
        // Equal jitter keeps every draw within [raw/2, raw].
        for (attempt, raw) in [(1u32, 1_000u64), (2, 2_000), (3, 4_000), (10, 16_000)] {
            let b = p.backoff_ns(t, attempt);
            assert!(b >= raw / 2 && b <= raw, "attempt {attempt}: {b} vs {raw}");
        }
        // Huge attempt counts must not overflow the shift.
        assert!(p.backoff_ns(t, u32::MAX) <= 16_000);
    }

    #[test]
    fn jitter_is_deterministic_and_decorrelates_tasks() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ns(TaskId(1), 2), p.backoff_ns(TaskId(1), 2));
        // Two synchronised conflicters should (overwhelmingly) draw
        // different backoffs at the same attempt.
        let distinct: std::collections::BTreeSet<u64> =
            (0..16).map(|t| p.backoff_ns(TaskId(t), 1)).collect();
        assert!(
            distinct.len() > 8,
            "jitter barely decorrelates: {distinct:?}"
        );
    }

    #[test]
    fn deadline_is_relative_to_arrival() {
        let p = RetryPolicy {
            deadline_ns: 100,
            ..RetryPolicy::default()
        };
        assert!(!p.past_deadline(50, 150));
        assert!(p.past_deadline(50, 151));
        // Disabled deadline never trips.
        let off = RetryPolicy {
            deadline_ns: u64::MAX,
            ..RetryPolicy::default()
        };
        assert!(!off.past_deadline(0, u64::MAX));
    }
}
