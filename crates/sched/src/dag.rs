//! Stage-frontier tracking for DAG-structured jobs.
//!
//! [`JobTracker`] is the per-job state machine both testbed drivers share:
//! it knows which stages are released (their input data items have
//! drained), running, or completed, computes each successor's release time
//! from the data-edge transfer model when a stage finishes, and folds the
//! job's measured makespan against its ideal critical path — the
//! critical-path-inflation metric the DAG benches report.
//!
//! The tracker is pure bookkeeping: admission, commits and repair all run
//! through the ordinary snapshot → propose → commit pipeline on the
//! per-stage tasks.

use flexsched_task::AiJob;
use std::collections::{BTreeMap, BTreeSet};

/// Per-job progress: released / running / completed stages plus the
/// timing needed for makespan and critical-path-inflation metrics.
#[derive(Debug, Clone)]
pub struct JobTracker {
    job: AiJob,
    /// Stage → time its inputs finished draining (ready to gang-admit).
    released: BTreeMap<u32, u64>,
    running: BTreeSet<u32>,
    completed: BTreeSet<u32>,
    /// Stage → completion time.
    done_ns: BTreeMap<u32, u64>,
    /// Stage → duration estimate captured at admission (first report),
    /// the per-stage input to the ideal critical path.
    ideal_ns: BTreeMap<u32, u64>,
    shed: bool,
}

impl JobTracker {
    /// Track a validated job; its root stages release at `job.arrival_ns`.
    pub fn new(job: AiJob) -> Self {
        let released = job
            .roots()
            .into_iter()
            .map(|r| (r, job.arrival_ns))
            .collect();
        JobTracker {
            job,
            released,
            running: BTreeSet::new(),
            completed: BTreeSet::new(),
            done_ns: BTreeMap::new(),
            ideal_ns: BTreeMap::new(),
            shed: false,
        }
    }

    /// The tracked job.
    pub fn job(&self) -> &AiJob {
        &self.job
    }

    /// Released stages not yet running or completed — the frontier to
    /// gang-admit next.
    pub fn ready(&self) -> Vec<u32> {
        self.released
            .keys()
            .copied()
            .filter(|s| !self.running.contains(s) && !self.completed.contains(s))
            .collect()
    }

    /// When `sid`'s inputs finished draining, if released.
    pub fn release_time(&self, sid: u32) -> Option<u64> {
        self.released.get(&sid).copied()
    }

    /// Mark a released stage as admitted and running.
    pub fn start(&mut self, sid: u32) {
        debug_assert!(
            self.released.contains_key(&sid),
            "starting an unreleased stage"
        );
        self.running.insert(sid);
    }

    /// Record the duration estimate the stage was admitted with (its
    /// first report's total); feeds the ideal critical path.
    pub fn note_ideal_duration(&mut self, sid: u32, ns: u64) {
        self.ideal_ns.entry(sid).or_insert(ns);
    }

    /// Complete a stage at `now`; returns the successors this completion
    /// released, each with the time its last input finishes draining
    /// (`max` over in-edges of producer completion + edge transfer).
    pub fn complete(&mut self, sid: u32, now: u64) -> Vec<(u32, u64)> {
        self.running.remove(&sid);
        self.completed.insert(sid);
        self.done_ns.insert(sid, now);
        let mut freed = Vec::new();
        for succ in self.job.successors(sid).collect::<Vec<_>>() {
            if self.released.contains_key(&succ) {
                continue;
            }
            if !self
                .job
                .predecessors(succ)
                .all(|p| self.completed.contains(&p))
            {
                continue;
            }
            let release_at = self
                .job
                .edges
                .iter()
                .filter(|e| e.to == succ)
                .map(|e| self.done_ns[&e.from] + self.job.edge_transfer_ns(e))
                .max()
                .unwrap_or(now);
            self.released.insert(succ, release_at);
            freed.push((succ, release_at));
        }
        freed
    }

    /// Every stage completed.
    pub fn is_done(&self) -> bool {
        self.completed.len() == self.job.stages.len()
    }

    /// Stages completed so far.
    pub fn completed_count(&self) -> usize {
        self.completed.len()
    }

    /// Stages currently running.
    pub fn running_count(&self) -> usize {
        self.running.len()
    }

    /// Give up on the job (gang-admission retries exhausted).
    pub fn mark_shed(&mut self) {
        self.shed = true;
    }

    /// Whether the job was shed.
    pub fn is_shed(&self) -> bool {
        self.shed
    }

    /// Arrival → last stage completion, once done.
    pub fn makespan_ns(&self) -> Option<u64> {
        if !self.is_done() {
            return None;
        }
        let last = self.done_ns.values().max().copied()?;
        Some(last.saturating_sub(self.job.arrival_ns))
    }

    /// The job's ideal makespan: longest DAG path under the duration
    /// estimates captured at admission (unlimited resources, no faults,
    /// no queueing).
    pub fn ideal_critical_path_ns(&self) -> u64 {
        self.job
            .critical_path_ns(|s| self.ideal_ns.get(&s).copied().unwrap_or(0))
    }

    /// Critical-path inflation ×1000: measured makespan over ideal
    /// critical path, in milli-units (1000 = no inflation). `None` until
    /// the job completes or when no ideal durations were recorded.
    pub fn inflation_milli(&self) -> Option<u64> {
        let actual = self.makespan_ns()? as f64;
        let ideal = self.ideal_critical_path_ns() as f64;
        if ideal <= 0.0 {
            return None;
        }
        Some((actual / ideal * 1000.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_task::{AiTask, DataEdge, JobId, Stage, StageKind, TaskId};

    fn job() -> AiJob {
        let task = |id: u64| AiTask {
            id: TaskId(id),
            model: flexsched_compute::ModelProfile::mobilenet(),
            global_site: flexsched_topo::NodeId(0),
            local_sites: vec![flexsched_topo::NodeId(1)],
            data_utility: Default::default(),
            iterations: 1,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        AiJob {
            id: JobId(0),
            stages: (0..3)
                .map(|i| Stage {
                    id: i,
                    kind: StageKind::Compute,
                    task: task(i as u64),
                })
                .collect(),
            edges: vec![
                DataEdge {
                    from: 0,
                    to: 1,
                    gbit: 1.0,
                },
                DataEdge {
                    from: 0,
                    to: 2,
                    gbit: 1.0,
                },
            ],
            arrival_ns: 100,
            class: Default::default(),
        }
    }

    #[test]
    fn tracker_walks_the_dag() {
        let mut t = JobTracker::new(job());
        assert_eq!(t.ready(), vec![0]);
        t.start(0);
        assert!(t.ready().is_empty());
        let freed = t.complete(0, 1_000);
        assert_eq!(freed.len(), 2);
        let transfer = t.job().edge_transfer_ns(&t.job().edges[0]);
        assert_eq!(freed[0], (1, 1_000 + transfer));
        assert_eq!(t.ready(), vec![1, 2]);
        t.start(1);
        t.start(2);
        t.complete(1, 5_000);
        assert!(!t.is_done());
        t.complete(2, 9_000);
        assert!(t.is_done());
        assert_eq!(t.makespan_ns(), Some(8_900));
    }

    #[test]
    fn inflation_compares_measured_to_ideal() {
        let mut t = JobTracker::new(job());
        for s in 0..3 {
            t.note_ideal_duration(s, 1_000);
        }
        t.start(0);
        t.complete(0, 100 + 1_000);
        let transfer = t.job().edge_transfer_ns(&t.job().edges[0]);
        t.start(1);
        t.start(2);
        // A second layer far slower than its ideal duration (the edge
        // transfer itself is ~10 ms here, so the slowdown must dwarf it).
        t.complete(1, 100 + 1_000 + transfer + 1_000_000_000);
        t.complete(2, 100 + 1_000 + transfer + 1_000_000_000);
        let ideal = t.ideal_critical_path_ns();
        assert_eq!(ideal, 2_000 + transfer);
        let inflation = t.inflation_milli().unwrap();
        assert!(inflation > 1000, "slower-than-ideal run must inflate");
    }
}
