//! The flexible scheduler: MST-based routing with multi-aggregation.
//!
//! "The flexible scheduler finds a suitable connectivity set ... We first
//! build auxiliary graphs for broadcast and upload procedures,
//! respectively. We initialize each link of the broadcast/upload graphs
//! according to bandwidth consumption and latency (if AI tasks pass through
//! the link), and then find MSTs between the global model and local models.
//! The links of MSTs are considered as routing paths, and the aggregation
//! operations happen in the middle and final nodes of upload procedure."

use crate::context::SchedContext;
use crate::error::SchedError;
use crate::schedule::{RoutingPlan, Schedule};
use crate::weights::auxiliary_weight;
use crate::{Result, Scheduler};
use flexsched_task::AiTask;
use flexsched_topo::algo::{steiner_tree_in, SteinerTree};
use flexsched_topo::{LinkId, NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet};

/// The proposed MST-based flexible scheduler.
#[derive(Debug, Clone)]
pub struct FlexibleMst {
    /// Build a separate upload tree with a reuse discount on the broadcast
    /// tree's links (paper behaviour). When `false` the broadcast tree is
    /// reused verbatim for upload.
    pub separate_trees: bool,
    /// Enable in-network aggregation at capable tree nodes. Disabling it is
    /// the ablation that shows where the bandwidth saving comes from: the
    /// tree still shares segments, but every edge must carry one update per
    /// descendant local model.
    pub aggregation: bool,
}

impl Default for FlexibleMst {
    fn default() -> Self {
        FlexibleMst {
            separate_trees: true,
            aggregation: true,
        }
    }
}

impl FlexibleMst {
    /// The scheduler exactly as evaluated in the poster.
    pub fn paper() -> Self {
        Self::default()
    }

    /// Ablation: tree routing without in-network aggregation.
    pub fn without_aggregation() -> Self {
        FlexibleMst {
            separate_trees: true,
            aggregation: false,
        }
    }
}

/// Per-node upload copy counts: how many model updates each node's parent
/// edge carries, given which nodes can aggregate.
///
/// Processes the tree bottom-up: a subtree contributes the sum of its
/// children's contributions plus one if its root hosts a selected local
/// model; a node that can aggregate collapses any number of updates to one.
pub fn upload_copies(
    tree: &SteinerTree,
    topo: &Topology,
    selected: &BTreeSet<NodeId>,
    aggregation: bool,
) -> Result<BTreeMap<NodeId, u32>> {
    let order = tree.bfs_from_root();
    // Bottom-up accumulation over a flat id-indexed array; the (small)
    // BTreeMap is only materialised at the end because `RoutingPlan` stores
    // copies keyed by node.
    let n_slots = topo.node_count();
    let mut carried: Vec<u32> = vec![0; n_slots];
    for n in order.iter().rev() {
        let mut c: u32 = selected.contains(n) as u32;
        for k in tree.children_of(*n) {
            c += carried[k.index()];
        }
        let can_agg = topo.node(*n)?.kind.can_aggregate();
        if aggregation && can_agg && c > 1 {
            c = 1;
        }
        carried[n.index()] = c;
    }
    // The map keyed by child node = copies on its parent edge; drop the root.
    Ok(order
        .into_iter()
        .filter(|n| *n != tree.root)
        .map(|n| (n, carried[n.index()]))
        .collect())
}

/// Smallest `residual / copies` over the tree's edges: the feasible uniform
/// per-update rate.
fn feasible_rate(
    ctx: &SchedContext<'_>,
    tree: &SteinerTree,
    copies: &BTreeMap<NodeId, u32>,
    demand: f64,
) -> f64 {
    let mut rate = demand;
    for (child, _, l) in tree.edges() {
        let c = f64::from(copies.get(&child).copied().unwrap_or(1).max(1));
        let residual = ctx.state.residual_min_gbps(l);
        rate = rate.min(residual / c);
    }
    rate
}

impl Scheduler for FlexibleMst {
    fn name(&self) -> &'static str {
        if self.aggregation {
            "flexible-mst"
        } else {
            "flexible-mst-noagg"
        }
    }

    fn schedule(
        &self,
        task: &AiTask,
        selected: &[NodeId],
        ctx: &SchedContext<'_>,
    ) -> Result<Schedule> {
        if selected.is_empty() {
            return Err(SchedError::NothingSelected(task.id));
        }
        let topo = ctx.state.topo();
        let demand = task.demand_gbps();

        let map_err = |e| match e {
            flexsched_topo::TopoError::Disconnected { to, .. } => SchedError::Unreachable {
                task: task.id,
                site: to,
            },
            other => SchedError::Topo(other),
        };

        // Both Steiner constructions draw their Dijkstra state from the
        // context's scratch pool, so back-to-back scheduling decisions
        // reuse the same buffers.
        let scratch = &mut *ctx.scratch.borrow_mut();

        // Broadcast auxiliary graph: nothing reused yet.
        let no_reuse: BTreeSet<LinkId> = BTreeSet::new();
        let broadcast_tree = steiner_tree_in(
            topo,
            task.global_site,
            selected,
            |l| auxiliary_weight(ctx.state, ctx.optical, demand, &no_reuse, l),
            scratch,
        )
        .map_err(map_err)?;

        // Upload auxiliary graph: the task already passes through the
        // broadcast tree's links, so they carry the reuse discount.
        let upload_tree = if self.separate_trees {
            let reused: BTreeSet<LinkId> = broadcast_tree.links.iter().copied().collect();
            steiner_tree_in(
                topo,
                task.global_site,
                selected,
                |l| auxiliary_weight(ctx.state, ctx.optical, demand, &reused, l),
                scratch,
            )
            .map_err(map_err)?
        } else {
            broadcast_tree.clone()
        };

        let selected_set: BTreeSet<NodeId> = selected.iter().copied().collect();
        let up_copies = upload_copies(&upload_tree, topo, &selected_set, self.aggregation)?;
        let bcast_copies: BTreeMap<NodeId, u32> = BTreeMap::new(); // multicast: 1 everywhere

        let bcast_rate = feasible_rate(ctx, &broadcast_tree, &bcast_copies, demand);
        let up_rate = feasible_rate(ctx, &upload_tree, &up_copies, demand);
        let rate = bcast_rate.min(up_rate);
        // The floor guards against uselessly slow *congested* rates; tasks
        // whose own demand is tiny are fine at their full demand.
        if rate < ctx.min_rate_gbps.min(demand) {
            return Err(SchedError::Blocked {
                task: task.id,
                reason: format!("feasible tree rate {rate:.3} Gbps below floor"),
            });
        }

        Ok(Schedule {
            task: task.id,
            scheduler: self.name().into(),
            global_site: task.global_site,
            selected_locals: selected.to_vec(),
            demand_gbps: demand,
            broadcast: RoutingPlan::Tree {
                tree: broadcast_tree,
                rate_gbps: rate,
                copies: bcast_copies,
            },
            upload: RoutingPlan::Tree {
                tree: upload_tree,
                rate_gbps: rate,
                copies: up_copies,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_compute::ModelProfile;
    use flexsched_simnet::NetworkState;
    use flexsched_task::TaskId;
    use flexsched_topo::builders;
    use std::sync::Arc;

    fn task_on_metro(locals: usize) -> (NetworkState, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=locals].to_vec(),
            data_utility: Default::default(),
            iterations: 3,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
        };
        (state, task)
    }

    #[test]
    fn produces_tree_plans_spanning_all_locals() {
        let (state, task) = task_on_metro(6);
        let ctx = SchedContext::new(&state);
        let s = FlexibleMst::paper()
            .schedule(&task, &task.local_sites, &ctx)
            .unwrap();
        match (&s.broadcast, &s.upload) {
            (RoutingPlan::Tree { tree: b, .. }, RoutingPlan::Tree { tree: u, .. }) => {
                assert!(b.spans_all_terminals());
                assert!(u.spans_all_terminals());
                assert_eq!(b.root, task.global_site);
            }
            _ => panic!("flexible must produce tree plans"),
        }
    }

    #[test]
    fn uses_less_bandwidth_than_fixed() {
        use crate::fixed::FixedSpff;
        for n in [5, 10, 15] {
            let (state, task) = task_on_metro(n);
            let ctx = SchedContext::new(&state);
            let flex = FlexibleMst::paper()
                .schedule(&task, &task.local_sites, &ctx)
                .unwrap();
            let fixed = FixedSpff.schedule(&task, &task.local_sites, &ctx).unwrap();
            let bf = flex.total_bandwidth_gbps(state.topo()).unwrap();
            let bx = fixed.total_bandwidth_gbps(state.topo()).unwrap();
            assert!(bf < bx, "n={n}: flexible {bf} !< fixed {bx}");
        }
    }

    #[test]
    fn bandwidth_saturates_with_locals() {
        // Tree bandwidth growth slows: the increment from 12->15 locals is
        // smaller than from 3->6.
        let bw = |n: usize| {
            let (state, task) = task_on_metro(n);
            let ctx = SchedContext::new(&state);
            FlexibleMst::paper()
                .schedule(&task, &task.local_sites, &ctx)
                .unwrap()
                .total_bandwidth_gbps(state.topo())
                .unwrap()
        };
        let (b3, b6, b12, b15) = (bw(3), bw(6), bw(12), bw(15));
        assert!(
            b6 - b3 > b15 - b12,
            "growth must flatten: {b3} {b6} {b12} {b15}"
        );
    }

    #[test]
    fn upload_copies_collapse_at_routers() {
        let (state, task) = task_on_metro(8);
        let ctx = SchedContext::new(&state);
        let s = FlexibleMst::paper()
            .schedule(&task, &task.local_sites, &ctx)
            .unwrap();
        if let RoutingPlan::Tree { tree, copies, .. } = &s.upload {
            // The edge into the root (global server) carries exactly one
            // aggregated update: its child is an aggregating router.
            let root_children: Vec<_> =
                tree.children().get(&tree.root).cloned().unwrap_or_default();
            let _ = root_children;
            for (n, c) in copies {
                let kind = state.topo().node(*n).unwrap().kind;
                if kind.can_aggregate() {
                    assert!(*c <= 1, "aggregating node {n} forwards {c} copies");
                }
            }
        } else {
            panic!("expected tree plan");
        }
    }

    #[test]
    fn no_aggregation_ablation_costs_more_bandwidth() {
        let (state, task) = task_on_metro(10);
        let ctx = SchedContext::new(&state);
        let with = FlexibleMst::paper()
            .schedule(&task, &task.local_sites, &ctx)
            .unwrap();
        let without = FlexibleMst::without_aggregation()
            .schedule(&task, &task.local_sites, &ctx)
            .unwrap();
        let bw = with.total_bandwidth_gbps(state.topo()).unwrap();
        let bwo = without.total_bandwidth_gbps(state.topo()).unwrap();
        assert!(bwo > bw, "no-agg {bwo} !> agg {bw}");
        assert_eq!(without.scheduler, "flexible-mst-noagg");
    }

    #[test]
    fn schedule_applies_and_releases() {
        let (mut state, task) = task_on_metro(10);
        let s = {
            let ctx = SchedContext::new(&state);
            FlexibleMst::paper()
                .schedule(&task, &task.local_sites, &ctx)
                .unwrap()
        };
        s.apply(&mut state).unwrap();
        assert!(state.total_reserved_gbps() > 0.0);
        s.release(&mut state).unwrap();
        assert!(state.total_reserved_gbps().abs() < 1e-9);
    }

    #[test]
    fn aggregation_points_are_middle_and_final_nodes() {
        let (state, task) = task_on_metro(10);
        let ctx = SchedContext::new(&state);
        let s = FlexibleMst::paper()
            .schedule(&task, &task.local_sites, &ctx)
            .unwrap();
        let pts = s.aggregation_points(state.topo());
        assert!(pts.contains(&task.global_site), "final node aggregates");
        assert!(pts.len() > 1, "middle nodes must aggregate too");
    }

    #[test]
    fn shared_trees_when_configured() {
        let (state, task) = task_on_metro(5);
        let ctx = SchedContext::new(&state);
        let sched = FlexibleMst {
            separate_trees: false,
            aggregation: true,
        };
        let s = sched.schedule(&task, &task.local_sites, &ctx).unwrap();
        if let (RoutingPlan::Tree { tree: b, .. }, RoutingPlan::Tree { tree: u, .. }) =
            (&s.broadcast, &s.upload)
        {
            assert_eq!(b.links, u.links);
        }
    }

    #[test]
    fn routes_around_down_links() {
        let (mut state, task) = task_on_metro(5);
        state.set_down(flexsched_topo::LinkId(0), true).unwrap();
        let ctx = SchedContext::new(&state);
        let s = FlexibleMst::paper()
            .schedule(&task, &task.local_sites, &ctx)
            .unwrap();
        for (dl, _) in s.reservations(state.topo()).unwrap() {
            assert_ne!(dl.link, flexsched_topo::LinkId(0));
        }
    }

    #[test]
    fn empty_selection_rejected() {
        let (state, task) = task_on_metro(3);
        let ctx = SchedContext::new(&state);
        assert!(matches!(
            FlexibleMst::paper().schedule(&task, &[], &ctx),
            Err(SchedError::NothingSelected(_))
        ));
    }
}
