//! The flexible scheduler: MST-based routing with multi-aggregation.
//!
//! "The flexible scheduler finds a suitable connectivity set ... We first
//! build auxiliary graphs for broadcast and upload procedures,
//! respectively. We initialize each link of the broadcast/upload graphs
//! according to bandwidth consumption and latency (if AI tasks pass through
//! the link), and then find MSTs between the global model and local models.
//! The links of MSTs are considered as routing paths, and the aggregation
//! operations happen in the middle and final nodes of upload procedure."
//!
//! The scheduler is a pure function of [`NetworkSnapshot`] + task; both
//! Steiner constructions draw their Dijkstra state from the caller's
//! [`ScratchPool`], so a worker thread that proposes many schedules
//! allocates nothing in steady state.

use crate::error::SchedError;
use crate::proposal::Proposal;
use crate::schedule::{RoutingPlan, Schedule};
use crate::snapshot::NetworkSnapshot;
use crate::weights::{auxiliary_weight, GAMMA_WAVELENGTH};
use crate::{Result, Scheduler};
use flexsched_task::AiTask;
use flexsched_topo::algo::{steiner_tree_in, ScratchPool, SteinerTree};
use flexsched_topo::{LinkId, NodeId, Topology};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// The proposed MST-based flexible scheduler.
#[derive(Debug, Clone)]
pub struct FlexibleMst {
    /// Build a separate upload tree with a reuse discount on the broadcast
    /// tree's links (paper behaviour). When `false` the broadcast tree is
    /// reused verbatim for upload (one `Arc`-shared tree, zero copies).
    pub separate_trees: bool,
    /// Enable in-network aggregation at capable tree nodes. Disabling it is
    /// the ablation that shows where the bandwidth saving comes from: the
    /// tree still shares segments, but every edge must carry one update per
    /// descendant local model.
    pub aggregation: bool,
    /// Weight of the wavelength-headroom term: how strongly trees prefer
    /// fibers whose continuity set still has free wavelengths (see
    /// [`auxiliary_weight`]). Zero reproduces the poster's binary
    /// feasibility; the default steers trees toward spectral headroom.
    pub wavelength_headroom: f64,
    /// Terminal count at or above which tree construction switches from
    /// the KMB all-pairs closure (`O(k·E log V)`) to the Mehlhorn
    /// single-pass sparsified closure (`O(E log V)`, independent of `k` —
    /// see [`flexsched_topo::algo::mehlhorn`]). Below the threshold KMB's
    /// early-exiting per-terminal searches win; above it the sparse
    /// closure's flat cost dominates (crossover measured by the
    /// `closure_ablation` bench; see `BENCH_4.json`). `usize::MAX`
    /// disables the sparse path entirely — [`FlexibleMst::paper`] pins it
    /// there so the poster-faithful configuration keeps the exact KMB
    /// construction.
    pub sparse_closure_threshold: usize,
}

/// Default crossover: at and above this many selected locals the Mehlhorn
/// closure is at least as fast as KMB on every measured fabric. The
/// crossover is fabric-dependent — KMB's early-exiting per-terminal
/// searches win up to k ≈ 5 on the metro/spine-leaf testbeds but up to
/// k ≈ 12 on a `fat_tree(10)` (whose larger edge set raises the sparse
/// pass's flat `O(E log V)` cost) — so the global default takes the
/// largest measured crossover (`closure_ablation` bench, `BENCH_4.json`:
/// ratios at k = 12 are 1.78× metro, 2.09× spine-leaf, 1.40× fat-tree,
/// rising to 16×/26× at k = 100/200).
pub const SPARSE_CLOSURE_THRESHOLD: usize = 12;

impl Default for FlexibleMst {
    fn default() -> Self {
        FlexibleMst {
            separate_trees: true,
            aggregation: true,
            wavelength_headroom: GAMMA_WAVELENGTH,
            sparse_closure_threshold: SPARSE_CLOSURE_THRESHOLD,
        }
    }
}

impl FlexibleMst {
    /// The scheduler exactly as evaluated in the poster: binary wavelength
    /// feasibility (no headroom steering), KMB closure at every scale.
    pub fn paper() -> Self {
        FlexibleMst {
            wavelength_headroom: 0.0,
            sparse_closure_threshold: usize::MAX,
            ..Self::default()
        }
    }

    /// Ablation: tree routing without in-network aggregation.
    pub fn without_aggregation() -> Self {
        FlexibleMst {
            aggregation: false,
            ..Self::paper()
        }
    }

    /// Override the wavelength-headroom weight.
    pub fn with_wavelength_headroom(mut self, gamma: f64) -> Self {
        self.wavelength_headroom = gamma;
        self
    }

    /// Override the KMB → Mehlhorn switchover point (`usize::MAX` forces
    /// KMB everywhere, `0` forces the sparse closure everywhere).
    pub fn with_sparse_closure_threshold(mut self, threshold: usize) -> Self {
        self.sparse_closure_threshold = threshold;
        self
    }

    /// Build one Steiner tree under the configured closure policy: KMB
    /// below the terminal-count threshold, Mehlhorn sparsified closure at
    /// or above it. Both constructions share the same weight contract,
    /// candidate comparison and rooting, so the choice affects decision
    /// latency, not the quality guarantee. The sparse path runs through
    /// the pool's [`flexsched_topo::algo::ClosureCache`], which shares and
    /// incrementally repairs the Voronoi/SPT passes across equal-regime
    /// decisions — the returned tree is pinned identical to a from-scratch
    /// [`flexsched_topo::algo::steiner_tree_sparse_in`] solve.
    #[allow(clippy::too_many_arguments)]
    fn build_tree(
        &self,
        snap: &NetworkSnapshot,
        root: NodeId,
        terminals: &[NodeId],
        fn_kind: u64,
        demand: f64,
        reused: &BTreeSet<LinkId>,
        weight: impl Fn(&flexsched_topo::Link) -> f64,
        scratch: &mut ScratchPool,
    ) -> std::result::Result<SteinerTree, flexsched_topo::TopoError> {
        if terminals.len() >= self.sparse_closure_threshold {
            self.cached_sparse_tree(
                snap, root, terminals, fn_kind, demand, reused, weight, scratch,
            )
        } else {
            steiner_tree_in(snap.topo(), root, terminals, weight, scratch)
        }
    }

    /// The Mehlhorn sparse-closure construction, amortised through the
    /// pool's closure cache.
    ///
    /// Cache-key soundness: everything the weight function closes over
    /// *except per-link snapshot state* is tokenised into the regime —
    /// the topology's identity (the `Arc` address, so fresh all-zero-stamp
    /// snapshots of two same-shaped fabrics cannot collide), which weight
    /// function is being priced (`fn_kind`), the task demand, the headroom
    /// gamma, whether an optical layer is attached, and the ordered reuse
    /// set. The per-link state itself ([`auxiliary_weight`] reads residual
    /// capacity, the down set, free-wavelength counts and grooming
    /// residuals) is covered by the per-link mutation stamps: every IP
    /// mutation bumps [`flexsched_simnet::NetSnapshot::link_version`] and
    /// every spectrum mutation bumps
    /// [`flexsched_optical::OpticalSnapshot::link_version`] for each
    /// crossed link.
    #[allow(clippy::too_many_arguments)]
    fn cached_sparse_tree(
        &self,
        snap: &NetworkSnapshot,
        root: NodeId,
        terminals: &[NodeId],
        fn_kind: u64,
        demand: f64,
        reused: &BTreeSet<LinkId>,
        weight: impl Fn(&flexsched_topo::Link) -> f64,
        scratch: &mut ScratchPool,
    ) -> std::result::Result<SteinerTree, flexsched_topo::TopoError> {
        let mut regime: Vec<u64> = Vec::with_capacity(5 + reused.len());
        regime.push(Arc::as_ptr(&snap.net().topo_arc()) as usize as u64);
        regime.push(fn_kind);
        regime.push(demand.to_bits());
        regime.push(self.wavelength_headroom.to_bits());
        regime.push(u64::from(snap.optical().is_some()));
        regime.extend(reused.iter().map(|l| u64::from(l.0)));
        let stamp = |l: LinkId| {
            [
                snap.net().link_version(l),
                snap.optical().map_or(0, |o| o.link_version(l)),
            ]
        };
        let mut cache = scratch.take_closure_cache();
        let out = cache.solve_in(
            snap.topo(),
            root,
            terminals,
            &regime,
            stamp,
            weight,
            scratch,
        );
        scratch.give_back_closure_cache(cache);
        out
    }
}

/// Regime discriminators for the closure-cache key: the three weight
/// functions a [`FlexibleMst`] decision prices trees under must never
/// share cached passes even when their other parameters coincide.
const REGIME_BROADCAST: u64 = 0;
const REGIME_UPLOAD: u64 = 1;
const REGIME_FRESH_ESTIMATE: u64 = 2;

/// Per-node upload copy counts: how many model updates each node's parent
/// edge carries, given which nodes can aggregate.
///
/// Processes the tree bottom-up: a subtree contributes the sum of its
/// children's contributions plus one if its root hosts a selected local
/// model; a node that can aggregate collapses any number of updates to one.
pub fn upload_copies(
    tree: &SteinerTree,
    topo: &Topology,
    selected: &BTreeSet<NodeId>,
    aggregation: bool,
) -> Result<BTreeMap<NodeId, u32>> {
    let order = tree.bfs_from_root();
    // Bottom-up accumulation over a flat id-indexed array; the (small)
    // BTreeMap is only materialised at the end because `RoutingPlan` stores
    // copies keyed by node.
    let n_slots = topo.node_count();
    let mut carried: Vec<u32> = vec![0; n_slots];
    for n in order.iter().rev() {
        let mut c: u32 = selected.contains(n) as u32;
        for k in tree.children_of(*n) {
            c += carried[k.index()];
        }
        let can_agg = topo.node(*n)?.kind.can_aggregate();
        if aggregation && can_agg && c > 1 {
            c = 1;
        }
        carried[n.index()] = c;
    }
    // The map keyed by child node = copies on its parent edge; drop the root.
    Ok(order
        .into_iter()
        .filter(|n| *n != tree.root)
        .map(|n| (n, carried[n.index()]))
        .collect())
}

/// Smallest `residual / copies` over the tree's edges: the feasible uniform
/// per-update rate.
fn feasible_rate(
    snap: &NetworkSnapshot,
    tree: &SteinerTree,
    copies: &BTreeMap<NodeId, u32>,
    demand: f64,
) -> f64 {
    let mut rate = demand;
    for (child, _, l) in tree.edges() {
        let c = f64::from(copies.get(&child).copied().unwrap_or(1).max(1));
        let residual = snap.net().residual_min_gbps(l);
        rate = rate.min(residual / c);
    }
    rate
}

impl Scheduler for FlexibleMst {
    fn name(&self) -> &'static str {
        if self.aggregation {
            "flexible-mst"
        } else {
            "flexible-mst-noagg"
        }
    }

    fn propose(
        &self,
        task: &AiTask,
        selected: &[NodeId],
        snap: &NetworkSnapshot,
        scratch: &mut ScratchPool,
    ) -> Result<Proposal> {
        if selected.is_empty() {
            return Err(SchedError::NothingSelected(task.id));
        }
        let topo = snap.topo();
        let demand = task.demand_gbps();
        // Start this decision's read region: both tree constructions absorb
        // their searches' consulted links into the pool's log, and the
        // proposal carries the union as stamped read claims.
        scratch.read_log_mut().reset();

        let map_err = |e| match e {
            flexsched_topo::TopoError::Disconnected { to, .. } => SchedError::Unreachable {
                task: task.id,
                site: to,
            },
            other => SchedError::Topo(other),
        };

        // Broadcast auxiliary graph: nothing reused yet.
        let no_reuse: BTreeSet<LinkId> = BTreeSet::new();
        let broadcast_tree = Arc::new(
            self.build_tree(
                snap,
                task.global_site,
                selected,
                REGIME_BROADCAST,
                demand,
                &no_reuse,
                |l| auxiliary_weight(snap, demand, &no_reuse, l, self.wavelength_headroom),
                scratch,
            )
            .map_err(map_err)?,
        );

        // Upload auxiliary graph: the task already passes through the
        // broadcast tree's links, so they carry the reuse discount. When
        // trees are shared, the broadcast tree is reused by `Arc` handle —
        // no copy of its flat arrays.
        let upload_tree = if self.separate_trees {
            let reused: BTreeSet<LinkId> = broadcast_tree.links.iter().copied().collect();
            Arc::new(
                self.build_tree(
                    snap,
                    task.global_site,
                    selected,
                    REGIME_UPLOAD,
                    demand,
                    &reused,
                    |l| auxiliary_weight(snap, demand, &reused, l, self.wavelength_headroom),
                    scratch,
                )
                .map_err(map_err)?,
            )
        } else {
            Arc::clone(&broadcast_tree)
        };

        let selected_set: BTreeSet<NodeId> = selected.iter().copied().collect();
        let up_copies = upload_copies(&upload_tree, topo, &selected_set, self.aggregation)?;
        let bcast_copies: BTreeMap<NodeId, u32> = BTreeMap::new(); // multicast: 1 everywhere

        let bcast_rate = feasible_rate(snap, &broadcast_tree, &bcast_copies, demand);
        let up_rate = feasible_rate(snap, &upload_tree, &up_copies, demand);
        let rate = bcast_rate.min(up_rate);
        // The floor guards against uselessly slow *congested* rates; tasks
        // whose own demand is tiny are fine at their full demand.
        if rate < snap.min_rate_gbps.min(demand) {
            return Err(SchedError::Blocked {
                task: task.id,
                reason: format!("feasible tree rate {rate:.3} Gbps below floor"),
            });
        }

        Proposal::assemble_with_reads(
            Schedule {
                task: task.id,
                scheduler: self.name().into(),
                global_site: task.global_site,
                selected_locals: selected.to_vec(),
                demand_gbps: demand,
                broadcast: RoutingPlan::Tree {
                    tree: broadcast_tree,
                    rate_gbps: rate,
                    copies: bcast_copies,
                },
                upload: RoutingPlan::Tree {
                    tree: upload_tree,
                    rate_gbps: rate,
                    copies: up_copies,
                },
            },
            snap,
            scratch.read_log().links(),
        )
    }

    fn propose_repair(
        &self,
        task: &AiTask,
        current: &Schedule,
        snapshot: &NetworkSnapshot,
        scratch: &mut ScratchPool,
    ) -> Result<Option<crate::repair::RepairProposal>> {
        crate::repair::repair_schedule(self, task, current, snapshot, scratch)
    }

    /// Mehlhorn shadow-solve: ONE sparsified-closure Steiner construction
    /// (`O(E log V)` regardless of terminal count — see
    /// [`flexsched_topo::algo::mehlhorn`]) of the broadcast tree under
    /// exactly the weights an incremental repair prices with: the running
    /// schedule's own links reused, broken (down or spectrally dead) own
    /// links forced unusable. The returned weight is directly comparable
    /// to a repaired broadcast tree's `total_weight`, which is what makes
    /// [`ReschedulePolicy::resolve_on_cost_ratio`](crate::ReschedulePolicy::resolve_on_cost_ratio)
    /// a *measured* drift trigger rather than a blind counter.
    fn estimate_fresh_cost(
        &self,
        _task: &AiTask,
        current: &Schedule,
        snap: &NetworkSnapshot,
        scratch: &mut ScratchPool,
    ) -> Result<Option<f64>> {
        let (
            RoutingPlan::Tree {
                tree: old_bcast, ..
            },
            RoutingPlan::Tree { tree: old_up, .. },
        ) = (&current.broadcast, &current.upload)
        else {
            return Ok(None); // path plans: no tree to compare against
        };
        let demand = current.demand_gbps;
        let own: BTreeSet<LinkId> = old_bcast
            .links
            .iter()
            .chain(old_up.links.iter())
            .copied()
            .collect();
        // A reused link skips the spectral feasibility check inside
        // `auxiliary_weight`; a *broken* own link must still be unusable,
        // exactly as the repair's pricing forces it.
        let dead = |l: LinkId| {
            snap.net().is_down(l)
                || snap.optical().is_some_and(|opt| {
                    !opt.has_free_wavelength(l).unwrap_or(false) && !opt.groomable_across(l, demand)
                })
        };
        let shadow = self.cached_sparse_tree(
            snap,
            current.global_site,
            &current.selected_locals,
            REGIME_FRESH_ESTIMATE,
            demand,
            &own,
            |l| {
                if own.contains(&l.id) && dead(l.id) {
                    f64::INFINITY
                } else {
                    auxiliary_weight(snap, demand, &own, l, self.wavelength_headroom)
                }
            },
            scratch,
        );
        match shadow {
            Ok(tree) => Ok(Some(tree.total_weight)),
            // No fresh tree exists right now (e.g. a partition): nothing to
            // compare against, so the trigger stays quiet.
            Err(_) => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_compute::ModelProfile;
    use flexsched_simnet::NetworkState;
    use flexsched_task::TaskId;
    use flexsched_topo::builders;
    use std::sync::Arc;

    fn task_on_metro(locals: usize) -> (NetworkState, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=locals].to_vec(),
            data_utility: Default::default(),
            iterations: 3,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        (state, task)
    }

    fn schedule_with(sched: &FlexibleMst, state: &NetworkState, task: &AiTask) -> Schedule {
        let snap = NetworkSnapshot::capture(state);
        sched
            .propose_once(task, &task.local_sites, &snap)
            .unwrap()
            .schedule
    }

    #[test]
    fn produces_tree_plans_spanning_all_locals() {
        let (state, task) = task_on_metro(6);
        let s = schedule_with(&FlexibleMst::paper(), &state, &task);
        match (&s.broadcast, &s.upload) {
            (RoutingPlan::Tree { tree: b, .. }, RoutingPlan::Tree { tree: u, .. }) => {
                assert!(b.spans_all_terminals());
                assert!(u.spans_all_terminals());
                assert_eq!(b.root, task.global_site);
            }
            _ => panic!("flexible must produce tree plans"),
        }
    }

    #[test]
    fn uses_less_bandwidth_than_fixed() {
        use crate::fixed::FixedSpff;
        for n in [5, 10, 15] {
            let (state, task) = task_on_metro(n);
            let snap = NetworkSnapshot::capture(&state);
            let flex = schedule_with(&FlexibleMst::paper(), &state, &task);
            let fixed = FixedSpff
                .propose_once(&task, &task.local_sites, &snap)
                .unwrap()
                .schedule;
            let bf = flex.total_bandwidth_gbps(state.topo()).unwrap();
            let bx = fixed.total_bandwidth_gbps(state.topo()).unwrap();
            assert!(bf < bx, "n={n}: flexible {bf} !< fixed {bx}");
        }
    }

    #[test]
    fn bandwidth_saturates_with_locals() {
        // Tree bandwidth growth slows: the increment from 12->15 locals is
        // smaller than from 3->6.
        let bw = |n: usize| {
            let (state, task) = task_on_metro(n);
            schedule_with(&FlexibleMst::paper(), &state, &task)
                .total_bandwidth_gbps(state.topo())
                .unwrap()
        };
        let (b3, b6, b12, b15) = (bw(3), bw(6), bw(12), bw(15));
        assert!(
            b6 - b3 > b15 - b12,
            "growth must flatten: {b3} {b6} {b12} {b15}"
        );
    }

    #[test]
    fn upload_copies_collapse_at_routers() {
        let (state, task) = task_on_metro(8);
        let s = schedule_with(&FlexibleMst::paper(), &state, &task);
        if let RoutingPlan::Tree { copies, .. } = &s.upload {
            for (n, c) in copies {
                let kind = state.topo().node(*n).unwrap().kind;
                if kind.can_aggregate() {
                    assert!(*c <= 1, "aggregating node {n} forwards {c} copies");
                }
            }
        } else {
            panic!("expected tree plan");
        }
    }

    #[test]
    fn no_aggregation_ablation_costs_more_bandwidth() {
        let (state, task) = task_on_metro(10);
        let with = schedule_with(&FlexibleMst::paper(), &state, &task);
        let without = schedule_with(&FlexibleMst::without_aggregation(), &state, &task);
        let bw = with.total_bandwidth_gbps(state.topo()).unwrap();
        let bwo = without.total_bandwidth_gbps(state.topo()).unwrap();
        assert!(bwo > bw, "no-agg {bwo} !> agg {bw}");
        assert_eq!(without.scheduler, "flexible-mst-noagg");
    }

    #[test]
    fn schedule_applies_and_releases() {
        let (mut state, task) = task_on_metro(10);
        let s = schedule_with(&FlexibleMst::paper(), &state, &task);
        s.apply(&mut state).unwrap();
        assert!(state.total_reserved_gbps() > 0.0);
        s.release(&mut state).unwrap();
        assert!(state.total_reserved_gbps().abs() < 1e-9);
    }

    #[test]
    fn proposing_mutates_nothing() {
        let (state, task) = task_on_metro(8);
        let version = state.version();
        let _ = schedule_with(&FlexibleMst::paper(), &state, &task);
        assert_eq!(state.version(), version);
        assert!(state.total_reserved_gbps().abs() < 1e-12);
    }

    #[test]
    fn aggregation_points_are_middle_and_final_nodes() {
        let (state, task) = task_on_metro(10);
        let s = schedule_with(&FlexibleMst::paper(), &state, &task);
        let pts = s.aggregation_points(state.topo());
        assert!(pts.contains(&task.global_site), "final node aggregates");
        assert!(pts.len() > 1, "middle nodes must aggregate too");
    }

    #[test]
    fn shared_trees_share_one_allocation() {
        let (state, task) = task_on_metro(5);
        let sched = FlexibleMst {
            separate_trees: false,
            ..FlexibleMst::paper()
        };
        let s = schedule_with(&sched, &state, &task);
        if let (RoutingPlan::Tree { tree: b, .. }, RoutingPlan::Tree { tree: u, .. }) =
            (&s.broadcast, &s.upload)
        {
            assert_eq!(b.links, u.links);
            assert!(
                Arc::ptr_eq(b, u),
                "shared mode must Arc-share the tree, not copy it"
            );
        }
    }

    #[test]
    fn routes_around_down_links() {
        let (mut state, task) = task_on_metro(5);
        state.set_down(flexsched_topo::LinkId(0), true).unwrap();
        let s = schedule_with(&FlexibleMst::paper(), &state, &task);
        for (dl, _) in s.reservations(state.topo()).unwrap() {
            assert_ne!(dl.link, flexsched_topo::LinkId(0));
        }
    }

    #[test]
    fn empty_selection_rejected() {
        let (state, task) = task_on_metro(3);
        let snap = NetworkSnapshot::capture(&state);
        assert!(matches!(
            FlexibleMst::paper().propose_once(&task, &[], &snap),
            Err(SchedError::NothingSelected(_))
        ));
    }

    #[test]
    fn sparse_and_kmb_schedules_agree_at_small_k() {
        // Fixed-seed schedule identity: the Mehlhorn closure forced on
        // (threshold 0) must reproduce the KMB schedules bit-for-bit at
        // small k on the paper's testbed — trees, rates and copies.
        for locals in [3usize, 5, 8, 12] {
            let (state, task) = task_on_metro(locals);
            let kmb = schedule_with(&FlexibleMst::paper(), &state, &task);
            let sparse = schedule_with(
                &FlexibleMst::paper().with_sparse_closure_threshold(0),
                &state,
                &task,
            );
            match (
                &kmb.broadcast,
                &sparse.broadcast,
                &kmb.upload,
                &sparse.upload,
            ) {
                (
                    RoutingPlan::Tree {
                        tree: kb,
                        rate_gbps: krb,
                        copies: kcb,
                    },
                    RoutingPlan::Tree {
                        tree: sb,
                        rate_gbps: srb,
                        copies: scb,
                    },
                    RoutingPlan::Tree {
                        tree: ku,
                        rate_gbps: kru,
                        copies: kcu,
                    },
                    RoutingPlan::Tree {
                        tree: su,
                        rate_gbps: sru,
                        copies: scu,
                    },
                ) => {
                    assert_eq!(**kb, **sb, "broadcast trees diverge at k={locals}");
                    assert_eq!(**ku, **su, "upload trees diverge at k={locals}");
                    assert_eq!(krb, srb);
                    assert_eq!(kru, sru);
                    assert_eq!(kcb, scb);
                    assert_eq!(kcu, scu);
                }
                _ => panic!("both schedulers must produce tree plans"),
            }
        }
    }

    #[test]
    fn default_auto_selects_sparse_closure_above_threshold() {
        // A 100-local decision on a fat-tree engages the Mehlhorn path
        // (default threshold) and must span every terminal with an
        // acyclic tree whose cost matches the KMB construction's.
        let topo = Arc::new(flexsched_topo::builders::fat_tree(10, 400.0));
        let state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        for locals in [100usize, 200] {
            let task = AiTask {
                id: TaskId(0),
                model: ModelProfile::mobilenet(),
                global_site: servers[0],
                local_sites: servers[1..=locals].to_vec(),
                data_utility: Default::default(),
                iterations: 1,
                comm_budget_ms: 50.0,
                arrival_ns: 0,
                class: Default::default(),
            };
            assert!(task.local_sites.len() >= FlexibleMst::default().sparse_closure_threshold);
            let sparse = schedule_with(&FlexibleMst::default(), &state, &task);
            let kmb = schedule_with(
                &FlexibleMst::default().with_sparse_closure_threshold(usize::MAX),
                &state,
                &task,
            );
            let (RoutingPlan::Tree { tree: st, .. }, RoutingPlan::Tree { tree: kt, .. }) =
                (&sparse.broadcast, &kmb.broadcast)
            else {
                panic!("expected tree plans");
            };
            assert!(st.spans_all_terminals(), "k={locals}");
            assert_eq!(st.links.len(), st.nodes.len() - 1, "k={locals}");
            // Tree-cost ratio: the sparsified closure preserves the
            // closure MST weight, so the resulting trees' costs must be
            // interchangeable (ties aside).
            let ratio = st.total_weight / kt.total_weight;
            assert!(
                (ratio - 1.0).abs() < 0.05,
                "k={locals}: sparse {} vs kmb {} (ratio {ratio})",
                st.total_weight,
                kt.total_weight
            );
        }
    }

    #[test]
    fn fresh_cost_estimate_is_finite_for_trees_and_none_for_paths() {
        use crate::Scheduler;
        let (mut state, task) = task_on_metro(8);
        let sched = FlexibleMst::paper();
        let snap = NetworkSnapshot::capture(&state);
        let p = sched.propose_once(&task, &task.local_sites, &snap).unwrap();
        p.schedule.apply(&mut state).unwrap();
        let live = NetworkSnapshot::capture(&state);
        let est = sched
            .estimate_fresh_cost(&task, &p.schedule, &live, &mut ScratchPool::new())
            .unwrap()
            .expect("tree schedules have a shadow estimate");
        assert!(est.is_finite() && est >= 0.0);
        // An undamaged, just-built tree shows no measurable drift: its own
        // cost under the shadow weights cannot beat the estimate by much
        // (the estimate reuses the same own-link discounts).
        let RoutingPlan::Tree { tree, .. } = &p.schedule.broadcast else {
            panic!("tree plan expected");
        };
        assert!(
            est <= tree.total_weight + 1e-9 || est / tree.total_weight < 2.0,
            "estimate {est} wildly off tree cost {}",
            tree.total_weight
        );
        // Path plans have nothing to shadow-solve.
        let fixed = crate::FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap();
        assert!(sched
            .estimate_fresh_cost(&task, &fixed.schedule, &live, &mut ScratchPool::new())
            .unwrap()
            .is_none());
    }

    #[test]
    fn headroom_steers_trees_toward_free_spectrum() {
        use flexsched_optical::{OpticalState, WavelengthPolicy};
        use flexsched_topo::{NodeKind, Path, Topology};
        // G - r - (two parallel WDM fibers) - r2 - L: identical spans, but
        // one fiber has 3 of its 4 wavelengths lit. With headroom steering
        // the tree must pick the empty fiber; the paper's binary weight is
        // free to pick either (it takes the lower link id).
        let mut t = Topology::new();
        let g = t.add_node(NodeKind::Server, "G");
        let r1 = t.add_node(NodeKind::IpRouter, "r1");
        let o1 = t.add_node(NodeKind::Roadm, "o1");
        let o2 = t.add_node(NodeKind::Roadm, "o2");
        let r2 = t.add_node(NodeKind::IpRouter, "r2");
        let l = t.add_node(NodeKind::Server, "L");
        t.add_link(g, r1, 0.1, 400.0).unwrap();
        t.add_wdm_link(r1, o1, 0.1, 400.0, 4).unwrap();
        let crowded = t.add_wdm_link(o1, o2, 10.0, 400.0, 4).unwrap();
        let empty = t.add_wdm_link(o1, o2, 10.0, 400.0, 4).unwrap();
        t.add_wdm_link(o2, r2, 0.1, 400.0, 4).unwrap();
        t.add_link(r2, l, 0.1, 400.0).unwrap();
        let topo = Arc::new(t);
        let state = NetworkState::new(Arc::clone(&topo));
        let mut opt = OpticalState::new(Arc::clone(&topo));
        let hop = Path::new(vec![o1, o2], vec![crowded]).unwrap();
        for _ in 0..3 {
            opt.establish(hop.clone(), WavelengthPolicy::FirstFit)
                .unwrap();
        }
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: g,
            local_sites: vec![l],
            data_utility: Default::default(),
            iterations: 1,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        let snap = NetworkSnapshot::capture(&state).with_optical(&opt);
        let aware = FlexibleMst::default()
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap()
            .schedule;
        if let RoutingPlan::Tree { tree, .. } = &aware.broadcast {
            assert!(
                tree.links.contains(&empty) && !tree.links.contains(&crowded),
                "headroom-aware tree must take the empty fiber: {:?}",
                tree.links
            );
        } else {
            panic!("expected tree plan");
        }
    }

    fn tree_links(s: &Schedule) -> (Vec<LinkId>, Vec<LinkId>) {
        let (RoutingPlan::Tree { tree: b, .. }, RoutingPlan::Tree { tree: u, .. }) =
            (&s.broadcast, &s.upload)
        else {
            panic!("expected tree plans");
        };
        (b.links.clone(), u.links.clone())
    }

    #[test]
    fn closure_cache_shares_passes_across_repeated_proposals() {
        // Re-proposing the same task against the same snapshot with one
        // warm pool (what BatchScheduler wave re-speculation does) must
        // hit the closure cache instead of re-running the Voronoi pass,
        // and must reproduce the first decision's trees exactly.
        let (state, task) = task_on_metro(15);
        let sched = FlexibleMst::default(); // threshold 12 → sparse path
        let snap = NetworkSnapshot::capture(&state);
        let mut pool = ScratchPool::new();
        let first = sched
            .propose(&task, &task.local_sites, &snap, &mut pool)
            .unwrap();
        let warm = pool.closure_stats();
        assert_eq!(warm.full_solves, 2, "broadcast + upload regimes: {warm:?}");
        let second = sched
            .propose(&task, &task.local_sites, &snap, &mut pool)
            .unwrap();
        let delta = pool.closure_stats().since(&warm);
        assert_eq!(
            (delta.hits, delta.full_solves, delta.fallbacks),
            (2, 0, 0),
            "repeat proposal must be pure cache hits: {delta:?}"
        );
        assert_eq!(tree_links(&first.schedule), tree_links(&second.schedule));
    }

    #[test]
    fn closure_cache_repairs_match_cold_solves_after_mutations() {
        // Background reservations between snapshots shift per-link weights;
        // the warm pool's incremental repair must produce bit-identical
        // schedules to a cold pool's from-scratch solves.
        let (mut state, task) = task_on_metro(15);
        let sched = FlexibleMst::default();
        let mut warm_pool = ScratchPool::new();
        for round in 0..4u32 {
            let snap = NetworkSnapshot::capture(&state);
            let warm = sched
                .propose(&task, &task.local_sites, &snap, &mut warm_pool)
                .unwrap();
            let cold = sched
                .propose(&task, &task.local_sites, &snap, &mut ScratchPool::new())
                .unwrap();
            assert_eq!(
                tree_links(&warm.schedule),
                tree_links(&cold.schedule),
                "round {round}: warm-cache schedule diverged from cold solve"
            );
            // Perturb a few links' residuals for the next round.
            for raw in [round * 3, round * 3 + 1, round * 3 + 2] {
                let l = flexsched_topo::LinkId(raw % state.topo().link_count() as u32);
                let dl = flexsched_simnet::DirLink::new(l, flexsched_topo::Direction::AtoB);
                state.reserve(dl, 5.0).unwrap();
            }
        }
        let stats = warm_pool.closure_stats();
        assert!(
            stats.repairs > 0,
            "mutation rounds must exercise the repair path: {stats:?}"
        );
    }
}
