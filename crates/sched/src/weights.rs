//! Auxiliary-graph link weights.
//!
//! The poster: "We initialize each link of the broadcast/upload graphs
//! according to bandwidth consumption and latency (if AI tasks pass through
//! the link)". Concretely:
//!
//! * the **bandwidth term** charges the fraction of the link's residual
//!   capacity the task's demand would consume (scarce links are expensive,
//!   and a link *already carrying this task* costs nothing more — the reuse
//!   discount that makes trees share segments),
//! * the **latency term** charges the hop's propagation + switching delay,
//!   normalised to a metro-scale hop, plus a congestion-dependent queuing
//!   estimate,
//! * the **wavelength-headroom term** (when an optical view is attached)
//!   charges spectral scarcity: links whose continuity set has few free
//!   wavelengths cost more, so trees prefer fibers with headroom instead of
//!   treating feasibility as a binary cliff,
//! * unusable links (down, no residual, or — when an optical view is
//!   attached — no free wavelength and no groomable lightpath) weigh
//!   `f64::INFINITY`.
//!
//! All inputs come from the immutable [`NetworkSnapshot`]: weight
//! evaluation is read-only and thread-safe by construction.

use crate::snapshot::NetworkSnapshot;
use flexsched_topo::{Link, LinkId};
use std::collections::BTreeSet;

/// Relative importance of the bandwidth-consumption term.
pub const ALPHA_BANDWIDTH: f64 = 1.0;

/// Relative importance of the latency term.
pub const BETA_LATENCY: f64 = 1.0;

/// Default relative importance of the wavelength-headroom term: a fully
/// spectrally-loaded fiber costs this much extra weight versus an empty
/// one. Comparable to a fraction of a typical latency/bandwidth term, so
/// headroom steers ties and near-ties without overriding genuinely shorter
/// or emptier routes.
pub const GAMMA_WAVELENGTH: f64 = 0.25;

/// Latency normalisation: one "unit" of latency cost per this many ns
/// (a 10 km metro hop plus router transit ≈ 52 µs).
const LATENCY_UNIT_NS: f64 = 52_000.0;

/// Weight of a link in the auxiliary graph of one procedure.
///
/// `reused` is the set of links already carrying this task (e.g. by the
/// other procedure's tree, or by the previous schedule during
/// rescheduling); their bandwidth term is zero. `wavelength_headroom`
/// scales the spectral-scarcity term (zero reproduces the poster's binary
/// feasibility exactly; [`GAMMA_WAVELENGTH`] is the recommended default).
pub fn auxiliary_weight(
    snap: &NetworkSnapshot,
    demand_gbps: f64,
    reused: &BTreeSet<LinkId>,
    link: &Link,
    wavelength_headroom: f64,
) -> f64 {
    let net = snap.net();
    if net.is_down(link.id) {
        return f64::INFINITY;
    }
    let residual = net.residual_min_gbps(link.id);
    // A link with no residual is unusable — unless the task itself already
    // occupies it: during rescheduling the previous schedule's reservations
    // are freed at migration time, so its own links stay routable (their
    // bandwidth term is zero below; congestion still shows in the queue
    // penalty). Foreign saturation keeps pricing at infinity.
    if residual <= 0.0 && !reused.contains(&link.id) {
        return f64::INFINITY;
    }
    // Wavelength feasibility and headroom: a link is usable if a new
    // lightpath can be lit on it *or* an established lightpath crossing it
    // still has groomable capacity for this demand. Reused links already
    // carry one. The free-wavelength count (one popcount pass over the
    // bitset RWA words) doubles as the continuity-set headroom.
    let mut headroom_term = 0.0;
    if let Some(opt) = snap.optical() {
        if !reused.contains(&link.id) {
            let free = opt.free_wavelength_count(link.id).unwrap_or(0);
            if free == 0 && !opt.groomable_across(link.id, demand_gbps) {
                return f64::INFINITY;
            }
            let grid = f64::from(link.wavelengths.max(1));
            headroom_term = wavelength_headroom * (1.0 - f64::from(free) / grid);
        }
    }

    let bandwidth_term = if reused.contains(&link.id) {
        0.0
    } else {
        // Demand as a fraction of residual: cheap on empty links, expensive
        // as the link approaches saturation.
        (demand_gbps / residual).min(100.0)
    };
    let latency_ns = link.propagation_ns() as f64;
    let utilization = 1.0 - (residual / link.capacity_gbps.max(1e-9)).clamp(0.0, 1.0);
    let queue_penalty = if utilization < 1.0 {
        utilization / (1.0 - utilization)
    } else {
        100.0
    }
    .min(100.0);
    let latency_term = latency_ns / LATENCY_UNIT_NS + 0.1 * queue_penalty;

    ALPHA_BANDWIDTH * bandwidth_term + BETA_LATENCY * latency_term + headroom_term
}

/// Weight used by the fixed SPFF baseline: pure latency shortest path,
/// infinite when the link is down or has no residual capacity at all. The
/// baseline deliberately ignores bandwidth consumption — that is what makes
/// it "fixed".
pub fn spff_weight(snap: &NetworkSnapshot, link: &Link) -> f64 {
    let net = snap.net();
    if net.is_down(link.id) || net.residual_min_gbps(link.id) <= 0.0 {
        return f64::INFINITY;
    }
    link.propagation_ns() as f64 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_simnet::{DirLink, NetworkState};
    use flexsched_topo::{builders, Direction};
    use std::sync::Arc;

    fn rig() -> NetworkState {
        NetworkState::new(Arc::new(builders::linear(3, 10.0, 100.0)))
    }

    fn link0(state: &NetworkState) -> Link {
        state.topo().link(LinkId(0)).unwrap().clone()
    }

    fn snap(state: &NetworkState) -> NetworkSnapshot {
        NetworkSnapshot::capture(state)
    }

    #[test]
    fn reused_links_have_no_bandwidth_cost() {
        let state = rig();
        let l = link0(&state);
        let empty = BTreeSet::new();
        let mut reused = BTreeSet::new();
        reused.insert(LinkId(0));
        let s = snap(&state);
        let fresh = auxiliary_weight(&s, 50.0, &empty, &l, 0.0);
        let cheap = auxiliary_weight(&s, 50.0, &reused, &l, 0.0);
        assert!(cheap < fresh, "reuse discount missing: {cheap} !< {fresh}");
    }

    #[test]
    fn scarcer_links_cost_more() {
        let mut state = rig();
        let l = link0(&state);
        let empty = BTreeSet::new();
        let idle = auxiliary_weight(&snap(&state), 20.0, &empty, &l, 0.0);
        state
            .add_background(DirLink::new(LinkId(0), Direction::AtoB), 70.0)
            .unwrap();
        let busy = auxiliary_weight(&snap(&state), 20.0, &empty, &l, 0.0);
        assert!(busy > idle);
    }

    #[test]
    fn saturated_links_are_unusable() {
        let mut state = rig();
        let l = link0(&state);
        state
            .add_background(DirLink::new(LinkId(0), Direction::AtoB), 100.0)
            .unwrap();
        assert_eq!(
            auxiliary_weight(&snap(&state), 1.0, &BTreeSet::new(), &l, 0.0),
            f64::INFINITY
        );
    }

    #[test]
    fn down_links_are_unusable_for_both_weights() {
        let mut state = rig();
        let l = link0(&state);
        state.set_down(LinkId(0), true).unwrap();
        let s = snap(&state);
        assert_eq!(
            auxiliary_weight(&s, 1.0, &BTreeSet::new(), &l, 0.0),
            f64::INFINITY
        );
        assert_eq!(spff_weight(&s, &l), f64::INFINITY);
    }

    #[test]
    fn spff_weight_tracks_latency_only() {
        let mut topo = flexsched_topo::Topology::new();
        let a = topo.add_node(flexsched_topo::NodeKind::IpRouter, "a");
        let b = topo.add_node(flexsched_topo::NodeKind::IpRouter, "b");
        let short = topo.add_link(a, b, 1.0, 10.0).unwrap();
        let long = topo.add_link(a, b, 50.0, 400.0).unwrap();
        let state = NetworkState::new(Arc::new(topo));
        let s = snap(&state);
        let ws = spff_weight(&s, state.topo().link(short).unwrap());
        let wl = spff_weight(&s, state.topo().link(long).unwrap());
        assert!(ws < wl, "capacity must not matter to SPFF: {ws} {wl}");
    }

    #[test]
    fn wavelength_exhaustion_blocks_new_links_only() {
        use flexsched_optical::{OpticalState, WavelengthPolicy};
        let mut topo = flexsched_topo::Topology::new();
        let a = topo.add_node(flexsched_topo::NodeKind::Roadm, "a");
        let b = topo.add_node(flexsched_topo::NodeKind::Roadm, "b");
        topo.add_wdm_link(a, b, 10.0, 100.0, 1).unwrap();
        let topo = Arc::new(topo);
        let state = NetworkState::new(Arc::clone(&topo));
        let mut opt = OpticalState::new(Arc::clone(&topo));
        let p = flexsched_topo::algo::shortest_path(&topo, a, b, flexsched_topo::algo::hop_weight)
            .unwrap();
        opt.establish(p, WavelengthPolicy::FirstFit).unwrap();
        let l = state.topo().link(LinkId(0)).unwrap().clone();
        let s = NetworkSnapshot::capture(&state).with_optical(&opt);
        // Demand exceeding the occupied lightpath's residual: unusable.
        let fresh = auxiliary_weight(&s, 500.0, &BTreeSet::new(), &l, 0.0);
        assert_eq!(fresh, f64::INFINITY, "no free wavelength -> unusable");
        // A small demand fits the established lightpath's residual: usable.
        let groomed = auxiliary_weight(&s, 1.0, &BTreeSet::new(), &l, 0.0);
        assert!(groomed.is_finite(), "groomable lightpath keeps link usable");
        let mut reused = BTreeSet::new();
        reused.insert(LinkId(0));
        let re = auxiliary_weight(&s, 1.0, &reused, &l, 0.0);
        assert!(re.is_finite(), "reused link keeps its lightpath");
    }

    #[test]
    fn wavelength_headroom_prices_spectral_scarcity() {
        use flexsched_optical::{OpticalState, WavelengthPolicy};
        // Two parallel 4-wavelength fibers; one gets 3 of 4 slots occupied.
        let mut topo = flexsched_topo::Topology::new();
        let a = topo.add_node(flexsched_topo::NodeKind::Roadm, "a");
        let b = topo.add_node(flexsched_topo::NodeKind::Roadm, "b");
        let crowded = topo.add_wdm_link(a, b, 10.0, 400.0, 4).unwrap();
        let empty = topo.add_wdm_link(a, b, 10.0, 400.0, 4).unwrap();
        let topo = Arc::new(topo);
        let state = NetworkState::new(Arc::clone(&topo));
        let mut opt = OpticalState::new(Arc::clone(&topo));
        let hop = flexsched_topo::Path::new(vec![a, b], vec![crowded]).unwrap();
        for _ in 0..3 {
            opt.establish(hop.clone(), WavelengthPolicy::FirstFit)
                .unwrap();
        }
        let s = NetworkSnapshot::capture(&state).with_optical(&opt);
        let none = BTreeSet::new();
        let lc = state.topo().link(crowded).unwrap().clone();
        let le = state.topo().link(empty).unwrap().clone();
        // Binary feasibility (gamma 0): both usable, same weight.
        let wc0 = auxiliary_weight(&s, 1.0, &none, &lc, 0.0);
        let we0 = auxiliary_weight(&s, 1.0, &none, &le, 0.0);
        assert!((wc0 - we0).abs() < 1e-12, "gamma=0 must ignore headroom");
        // Headroom-aware: the crowded fiber costs more.
        let wc = auxiliary_weight(&s, 1.0, &none, &lc, GAMMA_WAVELENGTH);
        let we = auxiliary_weight(&s, 1.0, &none, &le, GAMMA_WAVELENGTH);
        assert!(wc > we, "crowded {wc} !> empty {we}");
        // 3/4 occupied vs 0/4: the difference is gamma * 3/4.
        assert!((wc - we - GAMMA_WAVELENGTH * 0.75).abs() < 1e-12);
    }

    #[test]
    fn headroom_ignored_without_optical_view() {
        let state = rig();
        let l = link0(&state);
        let s = snap(&state);
        let a = auxiliary_weight(&s, 1.0, &BTreeSet::new(), &l, 0.0);
        let b = auxiliary_weight(&s, 1.0, &BTreeSet::new(), &l, GAMMA_WAVELENGTH);
        assert_eq!(a, b);
    }
}
