//! Auxiliary-graph link weights.
//!
//! The poster: "We initialize each link of the broadcast/upload graphs
//! according to bandwidth consumption and latency (if AI tasks pass through
//! the link)". Concretely:
//!
//! * the **bandwidth term** charges the fraction of the link's residual
//!   capacity the task's demand would consume (scarce links are expensive,
//!   and a link *already carrying this task* costs nothing more — the reuse
//!   discount that makes trees share segments),
//! * the **latency term** charges the hop's propagation + switching delay,
//!   normalised to a metro-scale hop, plus a congestion-dependent queuing
//!   estimate,
//! * unusable links (down, no residual, or — when an optical view is
//!   attached — no free wavelength) weigh `f64::INFINITY`.

use flexsched_optical::OpticalState;
use flexsched_simnet::NetworkState;
use flexsched_topo::{Link, LinkId};
use std::collections::BTreeSet;

/// Relative importance of the bandwidth-consumption term.
pub const ALPHA_BANDWIDTH: f64 = 1.0;

/// Relative importance of the latency term.
pub const BETA_LATENCY: f64 = 1.0;

/// Latency normalisation: one "unit" of latency cost per this many ns
/// (a 10 km metro hop plus router transit ≈ 52 µs).
const LATENCY_UNIT_NS: f64 = 52_000.0;

/// Weight of a link in the auxiliary graph of one procedure.
///
/// `reused` is the set of links already carrying this task (e.g. by the
/// other procedure's tree, or by the previous schedule during
/// rescheduling); their bandwidth term is zero.
pub fn auxiliary_weight(
    state: &NetworkState,
    optical: Option<&OpticalState>,
    demand_gbps: f64,
    reused: &BTreeSet<LinkId>,
    link: &Link,
) -> f64 {
    if state.is_down(link.id) {
        return f64::INFINITY;
    }
    let residual = state.residual_min_gbps(link.id);
    if residual <= 0.0 {
        return f64::INFINITY;
    }
    // Wavelength feasibility: a link is usable if a new lightpath can be
    // lit on it *or* an established lightpath crossing it still has
    // groomable capacity for this demand. Reused links already carry one.
    if let Some(opt) = optical {
        if !reused.contains(&link.id) {
            // One bitmask word scan instead of a per-wavelength is_free loop:
            // this runs for every link on every Dijkstra edge visit.
            let any_free = opt.has_free_wavelength(link.id).unwrap_or(false);
            let groomable = !any_free
                && opt.lightpaths().any(|lp| {
                    lp.path.links.contains(&link.id) && lp.residual_gbps() + 1e-9 >= demand_gbps
                });
            if !any_free && !groomable {
                return f64::INFINITY;
            }
        }
    }

    let bandwidth_term = if reused.contains(&link.id) {
        0.0
    } else {
        // Demand as a fraction of residual: cheap on empty links, expensive
        // as the link approaches saturation.
        (demand_gbps / residual).min(100.0)
    };
    let latency_ns = link.propagation_ns() as f64;
    let utilization = 1.0 - (residual / link.capacity_gbps.max(1e-9)).clamp(0.0, 1.0);
    let queue_penalty = if utilization < 1.0 {
        utilization / (1.0 - utilization)
    } else {
        100.0
    }
    .min(100.0);
    let latency_term = latency_ns / LATENCY_UNIT_NS + 0.1 * queue_penalty;

    ALPHA_BANDWIDTH * bandwidth_term + BETA_LATENCY * latency_term
}

/// Weight used by the fixed SPFF baseline: pure latency shortest path,
/// infinite when the link is down or has no residual capacity at all. The
/// baseline deliberately ignores bandwidth consumption — that is what makes
/// it "fixed".
pub fn spff_weight(state: &NetworkState, link: &Link) -> f64 {
    if state.is_down(link.id) || state.residual_min_gbps(link.id) <= 0.0 {
        return f64::INFINITY;
    }
    link.propagation_ns() as f64 + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_simnet::DirLink;
    use flexsched_topo::{builders, Direction};
    use std::sync::Arc;

    fn rig() -> NetworkState {
        NetworkState::new(Arc::new(builders::linear(3, 10.0, 100.0)))
    }

    fn link0(state: &NetworkState) -> Link {
        state.topo().link(LinkId(0)).unwrap().clone()
    }

    #[test]
    fn reused_links_have_no_bandwidth_cost() {
        let state = rig();
        let l = link0(&state);
        let empty = BTreeSet::new();
        let mut reused = BTreeSet::new();
        reused.insert(LinkId(0));
        let fresh = auxiliary_weight(&state, None, 50.0, &empty, &l);
        let cheap = auxiliary_weight(&state, None, 50.0, &reused, &l);
        assert!(cheap < fresh, "reuse discount missing: {cheap} !< {fresh}");
    }

    #[test]
    fn scarcer_links_cost_more() {
        let mut state = rig();
        let l = link0(&state);
        let empty = BTreeSet::new();
        let idle = auxiliary_weight(&state, None, 20.0, &empty, &l);
        state
            .add_background(DirLink::new(LinkId(0), Direction::AtoB), 70.0)
            .unwrap();
        let busy = auxiliary_weight(&state, None, 20.0, &empty, &l);
        assert!(busy > idle);
    }

    #[test]
    fn saturated_links_are_unusable() {
        let mut state = rig();
        let l = link0(&state);
        state
            .add_background(DirLink::new(LinkId(0), Direction::AtoB), 100.0)
            .unwrap();
        assert_eq!(
            auxiliary_weight(&state, None, 1.0, &BTreeSet::new(), &l),
            f64::INFINITY
        );
    }

    #[test]
    fn down_links_are_unusable_for_both_weights() {
        let mut state = rig();
        let l = link0(&state);
        state.set_down(LinkId(0), true).unwrap();
        assert_eq!(
            auxiliary_weight(&state, None, 1.0, &BTreeSet::new(), &l),
            f64::INFINITY
        );
        assert_eq!(spff_weight(&state, &l), f64::INFINITY);
    }

    #[test]
    fn spff_weight_tracks_latency_only() {
        let mut topo = flexsched_topo::Topology::new();
        let a = topo.add_node(flexsched_topo::NodeKind::IpRouter, "a");
        let b = topo.add_node(flexsched_topo::NodeKind::IpRouter, "b");
        let short = topo.add_link(a, b, 1.0, 10.0).unwrap();
        let long = topo.add_link(a, b, 50.0, 400.0).unwrap();
        let state = NetworkState::new(Arc::new(topo));
        let ws = spff_weight(&state, state.topo().link(short).unwrap());
        let wl = spff_weight(&state, state.topo().link(long).unwrap());
        assert!(ws < wl, "capacity must not matter to SPFF: {ws} {wl}");
    }

    #[test]
    fn wavelength_exhaustion_blocks_new_links_only() {
        use flexsched_optical::{OpticalState, WavelengthPolicy};
        let mut topo = flexsched_topo::Topology::new();
        let a = topo.add_node(flexsched_topo::NodeKind::Roadm, "a");
        let b = topo.add_node(flexsched_topo::NodeKind::Roadm, "b");
        topo.add_wdm_link(a, b, 10.0, 100.0, 1).unwrap();
        let topo = Arc::new(topo);
        let state = NetworkState::new(Arc::clone(&topo));
        let mut opt = OpticalState::new(Arc::clone(&topo));
        let p = flexsched_topo::algo::shortest_path(&topo, a, b, flexsched_topo::algo::hop_weight)
            .unwrap();
        opt.establish(p, WavelengthPolicy::FirstFit).unwrap();
        let l = state.topo().link(LinkId(0)).unwrap().clone();
        // Demand exceeding the occupied lightpath's residual: unusable.
        let fresh = auxiliary_weight(&state, Some(&opt), 500.0, &BTreeSet::new(), &l);
        assert_eq!(fresh, f64::INFINITY, "no free wavelength -> unusable");
        // A small demand fits the established lightpath's residual: usable.
        let groomed = auxiliary_weight(&state, Some(&opt), 1.0, &BTreeSet::new(), &l);
        assert!(groomed.is_finite(), "groomable lightpath keeps link usable");
        let mut reused = BTreeSet::new();
        reused.insert(LinkId(0));
        let re = auxiliary_weight(&state, Some(&opt), 1.0, &reused, &l);
        assert!(re.is_finite(), "reused link keeps its lightpath");
    }
}
