//! Local-model selection strategies (open challenge #1).
//!
//! "Each local model contributes to the global model based on its local
//! data. Thus, we should strategically select only those local models
//! containing useful data to improve model learning."

use flexsched_simnet::NetworkState;
use flexsched_task::AiTask;
use flexsched_topo::{algo, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// How to choose which local models participate in an iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionStrategy {
    /// Use every local model (the poster's evaluation setting).
    All,
    /// The `frac` (0..=1] highest-utility sites.
    TopKUtility(f64),
    /// A uniformly random `frac` of sites (seeded; the baseline selector in
    /// FL literature).
    RandomK(f64, u64),
    /// Highest utility *per unit network distance* from the global site:
    /// prefers useful data that is also cheap to reach.
    BandwidthAware(f64),
}

impl SelectionStrategy {
    /// Apply the strategy, returning the selected sites (ascending ids).
    /// Always selects at least one site.
    pub fn select(&self, task: &AiTask, state: &NetworkState) -> Vec<NodeId> {
        let n = task.local_sites.len();
        if n == 0 {
            return Vec::new();
        }
        let keep = |frac: f64| ((n as f64 * frac).ceil() as usize).clamp(1, n);
        let mut chosen = match self {
            SelectionStrategy::All => task.local_sites.clone(),
            SelectionStrategy::TopKUtility(frac) => task
                .sites_by_utility()
                .into_iter()
                .take(keep(*frac))
                .collect(),
            SelectionStrategy::RandomK(frac, seed) => {
                let mut rng = StdRng::seed_from_u64(*seed ^ task.id.0);
                let mut pool = task.local_sites.clone();
                let mut out = Vec::new();
                for _ in 0..keep(*frac) {
                    let i = rng.random_range(0..pool.len());
                    out.push(pool.swap_remove(i));
                }
                out
            }
            SelectionStrategy::BandwidthAware(frac) => {
                // Score = utility / (1 + hops from global site).
                let spt =
                    algo::shortest_path_tree(state.topo(), task.global_site, algo::hop_weight);
                let mut scored: Vec<(f64, NodeId)> = task
                    .local_sites
                    .iter()
                    .map(|s| {
                        let hops = spt.as_ref().map(|t| t.cost_to(*s)).unwrap_or(f64::INFINITY);
                        let score = task.utility_of(*s) / (1.0 + hops);
                        (score, *s)
                    })
                    .collect();
                scored.sort_by(|(sa, na), (sb, nb)| {
                    sb.partial_cmp(sa)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(na.cmp(nb))
                });
                scored
                    .into_iter()
                    .take(keep(*frac))
                    .map(|(_, s)| s)
                    .collect()
            }
        };
        chosen.sort();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_compute::ModelProfile;
    use flexsched_task::TaskId;
    use flexsched_topo::builders;
    use std::collections::BTreeMap;
    use std::sync::Arc;

    fn rig() -> (NetworkState, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let servers = topo.servers();
        let global = servers[0];
        let locals: Vec<NodeId> = servers[1..7].to_vec();
        let mut utility = BTreeMap::new();
        for (i, s) in locals.iter().enumerate() {
            utility.insert(*s, 0.1 + 0.15 * i as f64);
        }
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::lenet(),
            global_site: global,
            local_sites: locals,
            data_utility: utility,
            iterations: 3,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        (state, task)
    }

    #[test]
    fn all_keeps_everything() {
        let (state, task) = rig();
        assert_eq!(
            SelectionStrategy::All.select(&task, &state),
            task.local_sites
        );
    }

    #[test]
    fn topk_takes_highest_utility() {
        let (state, task) = rig();
        let half = SelectionStrategy::TopKUtility(0.5).select(&task, &state);
        assert_eq!(half.len(), 3);
        // The three highest utilities are the last three inserted sites.
        let best = task.sites_by_utility()[..3].to_vec();
        let mut best_sorted = best;
        best_sorted.sort();
        assert_eq!(half, best_sorted);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_task() {
        let (state, task) = rig();
        let a = SelectionStrategy::RandomK(0.5, 7).select(&task, &state);
        let b = SelectionStrategy::RandomK(0.5, 7).select(&task, &state);
        assert_eq!(a, b);
        let c = SelectionStrategy::RandomK(0.5, 8).select(&task, &state);
        // Different seed will usually differ; at minimum same length.
        assert_eq!(c.len(), a.len());
    }

    #[test]
    fn at_least_one_site_is_always_selected() {
        let (state, task) = rig();
        for s in [
            SelectionStrategy::TopKUtility(0.0001),
            SelectionStrategy::RandomK(0.0001, 1),
            SelectionStrategy::BandwidthAware(0.0001),
        ] {
            assert_eq!(s.select(&task, &state).len(), 1);
        }
    }

    #[test]
    fn bandwidth_aware_prefers_near_and_useful() {
        let (state, task) = rig();
        let picked = SelectionStrategy::BandwidthAware(0.3).select(&task, &state);
        assert_eq!(picked.len(), 2);
        // All picked sites must be in the task's local set.
        for p in &picked {
            assert!(task.local_sites.contains(p));
        }
    }

    #[test]
    fn fraction_one_equals_all() {
        let (state, task) = rig();
        assert_eq!(
            SelectionStrategy::TopKUtility(1.0).select(&task, &state),
            task.local_sites
        );
    }
}
