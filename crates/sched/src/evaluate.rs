//! Per-iteration latency and bandwidth evaluation of a schedule.
//!
//! Produces the [`TaskReport`]s behind Figure 3a ("total latency — both
//! model training and communication") and Figure 3b ("consumed bandwidth").
//! The evaluation runs against the network state *with the schedule
//! applied*, so queuing reflects both this task's reservations and
//! everything else on the network.

use crate::schedule::{RoutingPlan, Schedule};
use crate::Result;
use flexsched_compute::{training, ClusterManager, ServerSpec};
use flexsched_simnet::transfer::TransferSpec;
use flexsched_simnet::{transfer_time_ns, NetworkState, Transport};
use flexsched_task::{AiTask, TaskReport};
use flexsched_topo::{NodeId, Path};
use std::collections::BTreeMap;

/// Latency penalty per down link a schedule still traverses, ns. A flow
/// over a failed link stalls until protection switching or rescheduling
/// kicks in; 100 ms is a conservative restoration timescale and is what
/// makes the reschedule policy migrate away from broken schedules.
pub const OUTAGE_PENALTY_NS: u64 = 100_000_000;

/// Evaluate one schedule into a [`TaskReport`].
pub fn evaluate_schedule(
    task: &AiTask,
    schedule: &Schedule,
    state: &NetworkState,
    cluster: &ClusterManager,
    transport: &Transport,
) -> Result<TaskReport> {
    let training_ns = training_latency_ns(task, schedule, cluster);
    let broadcast_ns = broadcast_latency_ns(task, schedule, state, transport)?;
    let (mut upload_ns, aggregation_ns) = upload_latency_ns(task, schedule, state, transport)?;

    // One reservations walk serves both the bandwidth sum and the outage
    // scan (it used to be recomputed for each).
    let reservations = schedule.reservations(state.topo())?;
    let bandwidth_gbps = reservations.iter().map(|(_, r)| r).sum();

    // Charge outage penalties for every distinct down link in the footprint.
    let mut down_links = std::collections::BTreeSet::new();
    for (dl, _) in &reservations {
        if state.is_down(dl.link) {
            down_links.insert(dl.link);
        }
    }
    upload_ns += OUTAGE_PENALTY_NS * down_links.len() as u64;

    Ok(TaskReport {
        task: task.id,
        scheduler: schedule.scheduler.clone(),
        locals_scheduled: schedule.selected_locals.len(),
        training_ns,
        broadcast_ns,
        upload_ns,
        aggregation_ns,
        iterations: task.iterations,
        bandwidth_gbps,
        reschedules: 0,
    })
}

/// Slowest local's per-iteration training time (locals train in parallel;
/// the synchronisation barrier waits for the straggler).
fn training_latency_ns(task: &AiTask, schedule: &Schedule, cluster: &ClusterManager) -> u64 {
    let default_spec = ServerSpec::default();
    schedule
        .selected_locals
        .iter()
        .map(|site| {
            // Borrow the spec — no per-local clone inside the straggler-max
            // loop.
            let (spec, colocated) = match cluster.server(*site) {
                Ok(s) => (&s.spec, s.containers.max(1)),
                Err(_) => (&default_spec, 1),
            };
            training::training_iteration_ns(&task.model, spec, colocated)
        })
        .max()
        .unwrap_or(0)
}

fn transfer_over(
    state: &NetworkState,
    path: &Path,
    bytes: u64,
    rate: f64,
    transport: &Transport,
) -> Result<u64> {
    Ok(transfer_time_ns(
        state,
        &TransferSpec {
            path,
            size_bytes: bytes,
            reserved_gbps: rate,
            transport,
        },
    )?
    .as_ns())
}

/// Broadcast completion: all locals must receive the global weights; flows
/// run concurrently, so completion is the slowest one.
fn broadcast_latency_ns(
    task: &AiTask,
    schedule: &Schedule,
    state: &NetworkState,
    transport: &Transport,
) -> Result<u64> {
    let bytes = task.update_bytes();
    match &schedule.broadcast {
        RoutingPlan::Paths(map) => {
            let mut worst = 0u64;
            for rp in map.values() {
                worst = worst.max(transfer_over(
                    state,
                    &rp.path,
                    bytes,
                    rp.rate_gbps,
                    transport,
                )?);
            }
            Ok(worst)
        }
        RoutingPlan::Tree {
            tree, rate_gbps, ..
        } => {
            // Multicast: each leaf's copy streams down its root path at the
            // tree rate; completion is the deepest/slowest leaf.
            let mut worst = 0u64;
            for local in &schedule.selected_locals {
                let path = tree.path_from_root(*local)?;
                worst = worst.max(transfer_over(state, &path, bytes, *rate_gbps, transport)?);
            }
            Ok(worst)
        }
    }
}

/// Upload completion and the aggregation time on the critical path.
fn upload_latency_ns(
    task: &AiTask,
    schedule: &Schedule,
    state: &NetworkState,
    transport: &Transport,
) -> Result<(u64, u64)> {
    let bytes = task.update_bytes();
    match &schedule.upload {
        RoutingPlan::Paths(map) => {
            // All locals push concurrently; the global site then aggregates
            // every update at once.
            let mut worst = 0u64;
            for rp in map.values() {
                worst = worst.max(transfer_over(
                    state,
                    &rp.path,
                    bytes,
                    rp.rate_gbps,
                    transport,
                )?);
            }
            let agg = training::aggregation_ns(&task.model, map.len() + 1);
            Ok((worst + agg, agg))
        }
        RoutingPlan::Tree {
            tree,
            rate_gbps,
            copies,
        } => {
            // Bottom-up completion-time recursion at *chain* granularity:
            // between aggregation-significant nodes (root, selected locals
            // and branch points) updates stream cut-through, so
            // serialization is charged once per chain, not once per hop.
            let selected: std::collections::BTreeSet<NodeId> =
                schedule.selected_locals.iter().copied().collect();
            let significant: std::collections::BTreeSet<NodeId> = tree
                .nodes
                .iter()
                .copied()
                .filter(|n| {
                    *n == tree.root || selected.contains(n) || tree.children_of(*n).len() >= 2
                })
                .collect();

            // Chain from each significant node up to its nearest significant
            // ancestor: sig_children[ancestor] = [(node, chain path)].
            let mut sig_children: BTreeMap<NodeId, Vec<(NodeId, Path)>> = BTreeMap::new();
            for s in &significant {
                if *s == tree.root {
                    continue;
                }
                let mut nodes = vec![*s];
                let mut links = Vec::new();
                let mut cur = *s;
                while let Some((p, l)) = tree.parent_of(cur) {
                    nodes.push(p);
                    links.push(l);
                    cur = p;
                    if significant.contains(&cur) {
                        break;
                    }
                }
                let chain = Path::new(nodes, links).expect("chain alternation holds");
                sig_children.entry(cur).or_default().push((*s, chain));
            }

            // Streaming (pipelined) aggregation: updates flow through the
            // tree in chunks, each aggregation stage starts merging as soon
            // as the first chunk arrives. Completion follows the classic
            // pipeline formula
            //
            //   total = fill(deepest path of stage latencies) + drain,
            //
            // where a stage's latency is its chain's propagation/switching/
            // queuing plus one chunk of serialization and (if it collapses
            // updates) one chunk of aggregation compute, and the drain is a
            // single full-update serialization at the tree rate.
            //
            // Process significant nodes deepest-first.
            let mut order: Vec<NodeId> = significant.iter().copied().collect();
            order.sort_by_key(|n| std::cmp::Reverse(tree.depth(*n).unwrap_or(0)));
            let mut fill: BTreeMap<NodeId, (u64, u64)> = BTreeMap::new();
            for n in order {
                let mut worst_fill = 0u64;
                let mut agg_on_path = 0u64;
                let mut inputs = usize::from(selected.contains(&n));
                for (child, chain) in sig_children.get(&n).cloned().unwrap_or_default() {
                    let (c_fill, c_agg) = fill.get(&child).copied().unwrap_or((0, 0));
                    let c = u64::from(copies.get(&child).copied().unwrap_or(1).max(1));
                    // One chunk of the (possibly multi-copy) stream at the
                    // (copy-scaled) reserved chain rate; the chunked bytes
                    // and rate scale together, so copies cancel in the
                    // serialization term but not in queuing/propagation.
                    let t = transfer_over(
                        state,
                        &chain,
                        (bytes * c).div_ceil(PIPELINE_CHUNKS),
                        *rate_gbps * c as f64,
                        transport,
                    )?;
                    let arrival = c_fill + t;
                    if arrival >= worst_fill {
                        worst_fill = arrival;
                        agg_on_path = c_agg;
                    }
                    inputs += c as usize;
                }
                // Aggregate here iff this node collapses multiple updates
                // into one (the root always merges what arrives). Streaming
                // aggregation adds one chunk's worth of merge time to the
                // pipeline fill.
                let collapses = if n == tree.root {
                    inputs > 1
                } else {
                    copies.get(&n).copied().unwrap_or(1) == 1 && inputs > 1
                };
                if collapses {
                    let agg =
                        training::aggregation_ns(&task.model, inputs).div_ceil(PIPELINE_CHUNKS);
                    worst_fill += agg;
                    agg_on_path += agg;
                }
                fill.insert(n, (worst_fill, agg_on_path));
            }
            let (fill_ns, agg) = fill.get(&tree.root).copied().unwrap_or((0, 0));
            // Drain: one full update streams into the root at the tree rate.
            let drain_ns = (bytes as f64 * 8.0 / rate_gbps.max(1e-9)).round() as u64;
            Ok((fill_ns + drain_ns, agg))
        }
    }
}

/// Chunks an update is pipelined into while streaming through the
/// aggregation tree (RDMA message / collective chunk granularity).
const PIPELINE_CHUNKS: u64 = 16;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::FixedSpff;
    use crate::flexible::FlexibleMst;
    use crate::snapshot::NetworkSnapshot;
    use crate::Scheduler;
    use flexsched_compute::{ModelProfile, PlacementPolicy};
    use flexsched_task::TaskId;
    use flexsched_topo::builders;
    use std::sync::Arc;

    fn rig(locals: usize) -> (NetworkState, ClusterManager, AiTask) {
        let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
        let state = NetworkState::new(Arc::clone(&topo));
        let mut cluster = ClusterManager::from_topology(&topo, ServerSpec::default());
        let servers = topo.servers();
        let task = AiTask {
            id: TaskId(0),
            model: ModelProfile::mobilenet(),
            global_site: servers[0],
            local_sites: servers[1..=locals].to_vec(),
            data_utility: Default::default(),
            iterations: 5,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        };
        // Place containers so training sees real occupancy.
        cluster
            .place_on(
                task.global_site,
                0,
                flexsched_compute::ModelRole::Global,
                task.model.clone(),
                flexsched_compute::server::ResourceRequest::global_model(),
            )
            .unwrap();
        for site in &task.local_sites {
            cluster
                .place_on(
                    *site,
                    0,
                    flexsched_compute::ModelRole::Local,
                    task.model.clone(),
                    flexsched_compute::server::ResourceRequest::local_model(),
                )
                .unwrap();
        }
        let _ = PlacementPolicy::FirstFit;
        (state, cluster, task)
    }

    fn evaluate_with(sched: &dyn Scheduler, locals: usize) -> (TaskReport, f64) {
        let (mut state, cluster, task) = rig(locals);
        let s = {
            let snap = NetworkSnapshot::capture(&state);
            sched
                .propose_once(&task, &task.local_sites, &snap)
                .unwrap()
                .schedule
        };
        s.apply(&mut state).unwrap();
        let report = evaluate_schedule(&task, &s, &state, &cluster, &Transport::tcp()).unwrap();
        let bw = s.total_bandwidth_gbps(state.topo()).unwrap();
        (report, bw)
    }

    #[test]
    fn reports_have_all_components() {
        let (r, _) = evaluate_with(&FixedSpff, 5);
        assert!(r.training_ns > 0);
        assert!(r.broadcast_ns > 0);
        assert!(r.upload_ns > 0);
        assert!(r.upload_ns >= r.aggregation_ns);
        assert!(r.bandwidth_gbps > 0.0);
        assert_eq!(r.locals_scheduled, 5);
    }

    #[test]
    fn latencies_land_in_the_millisecond_regime() {
        let (r, _) = evaluate_with(&FlexibleMst::paper(), 10);
        let ms = r.iteration_ms();
        assert!(ms > 0.05 && ms < 1_000.0, "iteration {ms} ms out of regime");
    }

    #[test]
    fn flexible_beats_fixed_at_high_local_counts() {
        let (fx, _) = evaluate_with(&FixedSpff, 15);
        let (fl, _) = evaluate_with(&FlexibleMst::paper(), 15);
        assert!(
            fl.iteration_ns() < fx.iteration_ns(),
            "flexible {} !< fixed {}",
            fl.iteration_ms(),
            fx.iteration_ms()
        );
    }

    #[test]
    fn schedulers_are_comparable_at_low_local_counts() {
        let (fx, _) = evaluate_with(&FixedSpff, 3);
        let (fl, _) = evaluate_with(&FlexibleMst::paper(), 3);
        // Within 2x of each other at N=3 (the Figure-3a curves start close).
        let ratio = fx.iteration_ns() as f64 / fl.iteration_ns().max(1) as f64;
        assert!(ratio > 0.5 && ratio < 2.5, "ratio {ratio}");
    }

    #[test]
    fn fixed_latency_grows_faster_with_locals() {
        let (fx3, _) = evaluate_with(&FixedSpff, 3);
        let (fx15, _) = evaluate_with(&FixedSpff, 15);
        let (fl3, _) = evaluate_with(&FlexibleMst::paper(), 3);
        let (fl15, _) = evaluate_with(&FlexibleMst::paper(), 15);
        let fixed_growth = fx15.iteration_ns() as f64 / fx3.iteration_ns() as f64;
        let flex_growth = fl15.iteration_ns() as f64 / fl3.iteration_ns() as f64;
        assert!(
            fixed_growth > flex_growth,
            "fixed growth {fixed_growth} !> flexible growth {flex_growth}"
        );
    }

    #[test]
    fn flexible_bandwidth_is_lower() {
        let (_, bx) = evaluate_with(&FixedSpff, 12);
        let (_, bl) = evaluate_with(&FlexibleMst::paper(), 12);
        assert!(bl < bx, "flexible bw {bl} !< fixed bw {bx}");
    }

    #[test]
    fn aggregation_ablation_increases_upload_bandwidth_not_latency_floor() {
        let (_with_agg, bw_with) = evaluate_with(&FlexibleMst::paper(), 10);
        let (no_agg, bw_without) = evaluate_with(&FlexibleMst::without_aggregation(), 10);
        assert!(bw_without > bw_with);
        // Without aggregation the root still collapses everything at once.
        assert!(no_agg.upload_ns > 0);
    }

    #[test]
    fn training_reflects_colocation() {
        let (state, cluster, task) = rig(5);
        let snap = NetworkSnapshot::capture(&state);
        let s = FixedSpff
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap()
            .schedule;
        let with_containers = training_latency_ns(&task, &s, &cluster);
        let empty_cluster = ClusterManager::new();
        let bare = training_latency_ns(&task, &s, &empty_cluster);
        assert!(with_containers >= bare, "colocation can only slow training");
    }
}
