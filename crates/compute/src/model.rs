//! AI model profiles.
//!
//! The poster notes that "AI tasks can be implemented using different
//! machine learning models that include different parameters" and that
//! generative-AI model growth drives communication overhead. A
//! [`ModelProfile`] captures exactly what scheduling needs: how many bytes
//! one weight/update exchange moves, and how much compute one local
//! training iteration costs.

use serde::{Deserialize, Serialize};

/// A family of AI models with the knobs the scheduler cares about.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Family name, e.g. `"resnet50"`.
    pub name: String,
    /// Trainable parameter count.
    pub parameters: u64,
    /// Bytes per parameter on the wire (4 = fp32, 2 = fp16).
    pub bytes_per_param: u8,
    /// Multiplier `(0, 1]` applied to the raw update size (gradient
    /// compression / sparsification; 1.0 = uncompressed).
    pub compression: f64,
    /// Forward+backward FLOPs for one local iteration (one mini-batch).
    pub flops_per_iteration: f64,
}

impl ModelProfile {
    /// Bytes moved by one full weight broadcast or update upload. At least
    /// one byte for any non-empty model, however aggressive the compression.
    pub fn update_bytes(&self) -> u64 {
        if self.parameters == 0 {
            return 0;
        }
        let raw = self.parameters as f64 * f64::from(self.bytes_per_param);
        ((raw * self.compression.clamp(1e-6, 1.0)).round() as u64).max(1)
    }

    /// Sustained bandwidth demand to exchange one update within `budget_ms`
    /// milliseconds, in Gbit/s — how tasks express bandwidth requirements to
    /// the scheduler.
    pub fn demand_gbps(&self, budget_ms: f64) -> f64 {
        let bits = self.update_bytes() as f64 * 8.0;
        bits / (budget_ms * 1e6).max(1.0)
    }

    /// Classic LeNet-5-scale CNN: tiny edge model.
    pub fn lenet() -> Self {
        ModelProfile {
            name: "lenet".into(),
            parameters: 60_000,
            bytes_per_param: 4,
            compression: 1.0,
            flops_per_iteration: 2.0 * 60_000.0 * 3.0 * 32.0, // fwd+bwd, batch 32
        }
    }

    /// MobileNet-ish vision model for edge devices.
    pub fn mobilenet() -> Self {
        ModelProfile {
            name: "mobilenet".into(),
            parameters: 4_200_000,
            bytes_per_param: 4,
            compression: 1.0,
            flops_per_iteration: 0.6e9 * 2.0 * 32.0,
        }
    }

    /// ResNet-50: the CV workhorse the paper's references train.
    pub fn resnet50() -> Self {
        ModelProfile {
            name: "resnet50".into(),
            parameters: 25_600_000,
            bytes_per_param: 4,
            compression: 1.0,
            flops_per_iteration: 4.1e9 * 3.0 * 32.0,
        }
    }

    /// BERT-base: the NLP encoder referenced via "attention is all you need"
    /// lineage.
    pub fn bert_base() -> Self {
        ModelProfile {
            name: "bert-base".into(),
            parameters: 110_000_000,
            bytes_per_param: 2,
            compression: 1.0,
            flops_per_iteration: 22.0e9 * 3.0 * 16.0,
        }
    }

    /// A GPT-2-scale generative model: the "emergence of generative AI"
    /// driver for rapidly-growing model sizes.
    pub fn gpt2_small() -> Self {
        ModelProfile {
            name: "gpt2-small".into(),
            parameters: 124_000_000,
            bytes_per_param: 2,
            compression: 1.0,
            flops_per_iteration: 140.0e9 * 3.0 * 8.0,
        }
    }

    /// The five built-in profiles, small to large.
    pub fn catalog() -> Vec<ModelProfile> {
        vec![
            Self::lenet(),
            Self::mobilenet(),
            Self::resnet50(),
            Self::bert_base(),
            Self::gpt2_small(),
        ]
    }

    /// A compressed variant of this profile.
    pub fn with_compression(mut self, c: f64) -> Self {
        self.compression = c;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_bytes_scale_with_parameters() {
        assert!(ModelProfile::lenet().update_bytes() < ModelProfile::mobilenet().update_bytes());
        assert!(
            ModelProfile::resnet50().update_bytes() < ModelProfile::gpt2_small().update_bytes()
        );
    }

    #[test]
    fn resnet_update_is_around_100mb() {
        let b = ModelProfile::resnet50().update_bytes();
        assert!(b > 90_000_000 && b < 110_000_000, "{b}");
    }

    #[test]
    fn compression_shrinks_updates() {
        let full = ModelProfile::resnet50();
        let tenth = ModelProfile::resnet50().with_compression(0.1);
        assert_eq!(
            tenth.update_bytes(),
            (full.update_bytes() as f64 / 10.0).round() as u64
        );
    }

    #[test]
    fn demand_matches_hand_computation() {
        // 1 GB update in 100 ms => 80 Gbps.
        let m = ModelProfile {
            name: "x".into(),
            parameters: 250_000_000,
            bytes_per_param: 4,
            compression: 1.0,
            flops_per_iteration: 1.0,
        };
        assert!((m.demand_gbps(100.0) - 80.0).abs() < 0.1);
    }

    #[test]
    fn catalog_is_sorted_small_to_large() {
        let c = ModelProfile::catalog();
        for w in c.windows(2) {
            assert!(w[0].update_bytes() <= w[1].update_bytes());
        }
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn compression_clamps_to_positive() {
        let m = ModelProfile::lenet().with_compression(0.0);
        assert!(m.update_bytes() > 0 || m.parameters == 0);
    }
}
