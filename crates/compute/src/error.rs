//! Error type for the compute substrate.

use crate::container::ContainerId;
use flexsched_topo::NodeId;
use std::fmt;

/// Errors produced by placement and lifecycle operations.
#[derive(Debug, Clone, PartialEq)]
pub enum ComputeError {
    /// No server can fit the requested resources.
    NoCapacity {
        /// GPU share requested (1.0 = one full GPU).
        gpus: f64,
        /// CPU cores requested.
        cpu_cores: f64,
        /// Memory requested, GiB.
        mem_gib: f64,
    },
    /// The node is not registered as a server.
    UnknownServer(NodeId),
    /// The container id is not registered.
    UnknownContainer(ContainerId),
    /// Requested resources exceed what a specific server has free.
    ServerFull(NodeId),
}

impl fmt::Display for ComputeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComputeError::NoCapacity {
                gpus,
                cpu_cores,
                mem_gib,
            } => write!(
                f,
                "no server fits request (gpus={gpus}, cpu={cpu_cores}, mem={mem_gib}GiB)"
            ),
            ComputeError::UnknownServer(n) => write!(f, "unknown server {n}"),
            ComputeError::UnknownContainer(c) => write!(f, "unknown container {c}"),
            ComputeError::ServerFull(n) => write!(f, "server {n} lacks free resources"),
        }
    }
}

impl std::error::Error for ComputeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ComputeError::UnknownServer(NodeId(1))
            .to_string()
            .contains("n1"));
        assert!(ComputeError::ServerFull(NodeId(2))
            .to_string()
            .contains("n2"));
        let e = ComputeError::NoCapacity {
            gpus: 1.0,
            cpu_cores: 4.0,
            mem_gib: 16.0,
        };
        assert!(e.to_string().contains("gpus=1"));
    }
}
