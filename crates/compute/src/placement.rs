//! The computing manager: container placement over the server fleet.

use crate::container::{Container, ContainerId, ModelRole};
use crate::error::ComputeError;
use crate::model::ModelProfile;
use crate::server::{ResourceRequest, ServerSpec, ServerState};
use crate::Result;
use flexsched_topo::NodeId;
use std::collections::BTreeMap;

/// Placement policies for new containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementPolicy {
    /// Lowest node id that fits — the "first fit" of the SPFF baseline.
    FirstFit,
    /// The fitting server whose remaining headroom after placement is
    /// smallest (tight packing).
    BestFit,
    /// The fitting server with the lowest current load.
    LeastLoaded,
    /// Round-robin-ish spread: the fitting server hosting the fewest
    /// containers.
    Spread,
}

/// The computing manager from Figure 2: tracks every server and container.
#[derive(Debug, Clone, Default)]
pub struct ClusterManager {
    servers: BTreeMap<NodeId, ServerState>,
    containers: BTreeMap<ContainerId, Container>,
    next_id: u64,
}

impl ClusterManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register every server node of `topo` with the same spec.
    pub fn from_topology(topo: &flexsched_topo::Topology, spec: ServerSpec) -> Self {
        let mut m = Self::new();
        for s in topo.servers() {
            m.register_server(s, spec.clone());
        }
        m
    }

    /// Register (or replace) a server.
    pub fn register_server(&mut self, node: NodeId, spec: ServerSpec) {
        self.servers.insert(node, ServerState::new(spec));
    }

    /// Number of registered servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// Read a server's state.
    pub fn server(&self, node: NodeId) -> Result<&ServerState> {
        self.servers
            .get(&node)
            .ok_or(ComputeError::UnknownServer(node))
    }

    /// All registered server ids, ascending.
    pub fn server_ids(&self) -> Vec<NodeId> {
        self.servers.keys().copied().collect()
    }

    /// Choose a server for `req` under `policy` (no mutation).
    pub fn choose(&self, req: &ResourceRequest, policy: PlacementPolicy) -> Result<NodeId> {
        let fitting = self
            .servers
            .iter()
            .filter(|(_, s)| s.fits(req))
            .collect::<Vec<_>>();
        let chosen = match policy {
            PlacementPolicy::FirstFit => fitting.first().map(|(n, _)| **n),
            PlacementPolicy::BestFit => fitting
                .iter()
                .min_by(|(na, a), (nb, b)| {
                    let ha = a.headroom();
                    let hb = b.headroom();
                    ha.partial_cmp(&hb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(na.cmp(nb))
                })
                .map(|(n, _)| **n),
            PlacementPolicy::LeastLoaded => fitting
                .iter()
                .min_by(|(na, a), (nb, b)| {
                    a.load()
                        .partial_cmp(&b.load())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(na.cmp(nb))
                })
                .map(|(n, _)| **n),
            PlacementPolicy::Spread => fitting
                .iter()
                .min_by_key(|(n, s)| (s.containers, **n))
                .map(|(n, _)| **n),
        };
        chosen.ok_or(ComputeError::NoCapacity {
            gpus: req.gpus,
            cpu_cores: req.cpu_cores,
            mem_gib: req.mem_gib,
        })
    }

    /// Place a container on a specific server.
    pub fn place_on(
        &mut self,
        node: NodeId,
        task: u64,
        role: ModelRole,
        model: ModelProfile,
        req: ResourceRequest,
    ) -> Result<ContainerId> {
        let server = self
            .servers
            .get_mut(&node)
            .ok_or(ComputeError::UnknownServer(node))?;
        if !server.fits(&req) {
            return Err(ComputeError::ServerFull(node));
        }
        server.claim(&req);
        let id = ContainerId(self.next_id);
        self.next_id += 1;
        self.containers.insert(
            id,
            Container {
                id,
                server: node,
                task,
                role,
                model,
                resources: req,
            },
        );
        Ok(id)
    }

    /// Place a container under `policy`, returning its id.
    pub fn place(
        &mut self,
        task: u64,
        role: ModelRole,
        model: ModelProfile,
        req: ResourceRequest,
        policy: PlacementPolicy,
    ) -> Result<ContainerId> {
        let node = self.choose(&req, policy)?;
        self.place_on(node, task, role, model, req)
    }

    /// Remove a container, returning its record.
    pub fn remove(&mut self, id: ContainerId) -> Result<Container> {
        let c = self
            .containers
            .remove(&id)
            .ok_or(ComputeError::UnknownContainer(id))?;
        if let Some(server) = self.servers.get_mut(&c.server) {
            server.release(&c.resources);
        }
        Ok(c)
    }

    /// Read a container record.
    pub fn container(&self, id: ContainerId) -> Result<&Container> {
        self.containers
            .get(&id)
            .ok_or(ComputeError::UnknownContainer(id))
    }

    /// All containers of one task.
    pub fn task_containers(&self, task: u64) -> Vec<&Container> {
        self.containers
            .values()
            .filter(|c| c.task == task)
            .collect()
    }

    /// Containers resident on a server (used for interference modelling).
    pub fn colocated_count(&self, node: NodeId) -> u32 {
        self.servers.get(&node).map(|s| s.containers).unwrap_or(0)
    }

    /// Total active containers.
    pub fn container_count(&self) -> usize {
        self.containers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_topo::builders;

    fn manager() -> ClusterManager {
        let topo = builders::metro(&builders::MetroParams::default());
        ClusterManager::from_topology(&topo, ServerSpec::default())
    }

    #[test]
    fn registers_every_topology_server() {
        let m = manager();
        assert_eq!(m.server_count(), 24); // 6 routers * 4 servers
    }

    #[test]
    fn first_fit_picks_lowest_id() {
        let mut m = manager();
        let id = m
            .place(
                1,
                ModelRole::Local,
                ModelProfile::lenet(),
                ResourceRequest::local_model(),
                PlacementPolicy::FirstFit,
            )
            .unwrap();
        let first_server = m.server_ids()[0];
        assert_eq!(m.container(id).unwrap().server, first_server);
    }

    #[test]
    fn spread_distributes_across_servers() {
        let mut m = manager();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..8 {
            let id = m
                .place(
                    i,
                    ModelRole::Local,
                    ModelProfile::lenet(),
                    ResourceRequest::local_model(),
                    PlacementPolicy::Spread,
                )
                .unwrap();
            seen.insert(m.container(id).unwrap().server);
        }
        assert_eq!(seen.len(), 8, "spread must use 8 distinct servers");
    }

    #[test]
    fn first_fit_packs_one_server_first() {
        let mut m = manager();
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2 {
            let id = m
                .place(
                    i,
                    ModelRole::Local,
                    ModelProfile::lenet(),
                    ResourceRequest::local_model(),
                    PlacementPolicy::FirstFit,
                )
                .unwrap();
            seen.insert(m.container(id).unwrap().server);
        }
        assert_eq!(seen.len(), 1, "two 1-GPU jobs fit the first 2-GPU server");
    }

    #[test]
    fn capacity_exhaustion_errors() {
        let mut m = ClusterManager::new();
        m.register_server(NodeId(0), ServerSpec::default()); // 2 GPUs
        let req = ResourceRequest::local_model();
        m.place(
            0,
            ModelRole::Local,
            ModelProfile::lenet(),
            req,
            PlacementPolicy::FirstFit,
        )
        .unwrap();
        m.place(
            0,
            ModelRole::Local,
            ModelProfile::lenet(),
            req,
            PlacementPolicy::FirstFit,
        )
        .unwrap();
        let err = m
            .place(
                0,
                ModelRole::Local,
                ModelProfile::lenet(),
                req,
                PlacementPolicy::FirstFit,
            )
            .unwrap_err();
        assert!(matches!(err, ComputeError::NoCapacity { .. }));
    }

    #[test]
    fn remove_returns_resources() {
        let mut m = ClusterManager::new();
        m.register_server(NodeId(0), ServerSpec::default());
        let req = ResourceRequest::local_model();
        let id = m
            .place(
                0,
                ModelRole::Local,
                ModelProfile::lenet(),
                req,
                PlacementPolicy::FirstFit,
            )
            .unwrap();
        assert_eq!(m.container_count(), 1);
        m.remove(id).unwrap();
        assert_eq!(m.container_count(), 0);
        assert_eq!(m.server(NodeId(0)).unwrap().load(), 0.0);
    }

    #[test]
    fn task_containers_filters_by_task() {
        let mut m = manager();
        let a = m
            .place(
                7,
                ModelRole::Global,
                ModelProfile::lenet(),
                ResourceRequest::global_model(),
                PlacementPolicy::FirstFit,
            )
            .unwrap();
        m.place(
            8,
            ModelRole::Local,
            ModelProfile::lenet(),
            ResourceRequest::local_model(),
            PlacementPolicy::FirstFit,
        )
        .unwrap();
        let of7 = m.task_containers(7);
        assert_eq!(of7.len(), 1);
        assert_eq!(of7[0].id, a);
    }

    #[test]
    fn place_on_rejects_full_server() {
        let mut m = ClusterManager::new();
        m.register_server(NodeId(0), ServerSpec::default());
        let req = ResourceRequest::local_model();
        m.place_on(NodeId(0), 0, ModelRole::Local, ModelProfile::lenet(), req)
            .unwrap();
        m.place_on(NodeId(0), 0, ModelRole::Local, ModelProfile::lenet(), req)
            .unwrap();
        assert!(matches!(
            m.place_on(NodeId(0), 0, ModelRole::Local, ModelProfile::lenet(), req),
            Err(ComputeError::ServerFull(_))
        ));
    }

    #[test]
    fn unknown_lookups_error() {
        let m = ClusterManager::new();
        assert!(m.server(NodeId(1)).is_err());
        assert!(m.container(ContainerId(1)).is_err());
    }
}
