//! Server resource model.

use serde::{Deserialize, Serialize};

/// Hardware resources of one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpec {
    /// CPU cores.
    pub cpu_cores: f64,
    /// GPU count (fractional shares allowed for MIG-style slicing).
    pub gpus: f64,
    /// Peak per-GPU throughput, TFLOP/s.
    pub gpu_tflops: f64,
    /// Memory, GiB.
    pub mem_gib: f64,
}

impl Default for ServerSpec {
    /// A mid-range AI server: 32 cores, 2 GPUs of 60 TFLOP/s, 256 GiB.
    fn default() -> Self {
        ServerSpec {
            cpu_cores: 32.0,
            gpus: 2.0,
            gpu_tflops: 60.0,
            mem_gib: 256.0,
        }
    }
}

/// Resource request of one container.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// CPU cores.
    pub cpu_cores: f64,
    /// GPU share (1.0 = one full GPU).
    pub gpus: f64,
    /// Memory, GiB.
    pub mem_gib: f64,
}

impl ResourceRequest {
    /// Typical local-model trainer: 4 cores, 1 GPU, 32 GiB.
    pub fn local_model() -> Self {
        ResourceRequest {
            cpu_cores: 4.0,
            gpus: 1.0,
            mem_gib: 32.0,
        }
    }

    /// Typical global-model aggregator: CPU-heavy, no GPU needed.
    pub fn global_model() -> Self {
        ResourceRequest {
            cpu_cores: 8.0,
            gpus: 0.0,
            mem_gib: 64.0,
        }
    }
}

/// Occupancy state of one server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerState {
    /// Hardware.
    pub spec: ServerSpec,
    /// Allocated cores.
    pub used_cpu: f64,
    /// Allocated GPU share.
    pub used_gpus: f64,
    /// Allocated memory, GiB.
    pub used_mem: f64,
    /// Containers resident (count only; the registry lives in the manager).
    pub containers: u32,
}

impl ServerState {
    /// Fresh idle server.
    pub fn new(spec: ServerSpec) -> Self {
        ServerState {
            spec,
            used_cpu: 0.0,
            used_gpus: 0.0,
            used_mem: 0.0,
            containers: 0,
        }
    }

    /// Whether `req` fits in the remaining resources.
    pub fn fits(&self, req: &ResourceRequest) -> bool {
        self.used_cpu + req.cpu_cores <= self.spec.cpu_cores + 1e-9
            && self.used_gpus + req.gpus <= self.spec.gpus + 1e-9
            && self.used_mem + req.mem_gib <= self.spec.mem_gib + 1e-9
    }

    /// Claim `req` (caller must have checked [`ServerState::fits`]).
    pub fn claim(&mut self, req: &ResourceRequest) {
        self.used_cpu += req.cpu_cores;
        self.used_gpus += req.gpus;
        self.used_mem += req.mem_gib;
        self.containers += 1;
    }

    /// Return `req`'s resources.
    pub fn release(&mut self, req: &ResourceRequest) {
        self.used_cpu = (self.used_cpu - req.cpu_cores).max(0.0);
        self.used_gpus = (self.used_gpus - req.gpus).max(0.0);
        self.used_mem = (self.used_mem - req.mem_gib).max(0.0);
        self.containers = self.containers.saturating_sub(1);
    }

    /// Load score in `[0, 1]`: the max utilization across dimensions.
    pub fn load(&self) -> f64 {
        let c = self.used_cpu / self.spec.cpu_cores.max(1e-9);
        let g = if self.spec.gpus > 0.0 {
            self.used_gpus / self.spec.gpus
        } else {
            0.0
        };
        let m = self.used_mem / self.spec.mem_gib.max(1e-9);
        c.max(g).max(m).clamp(0.0, 1.0)
    }

    /// Remaining capacity score (1 - load).
    pub fn headroom(&self) -> f64 {
        1.0 - self.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_server_fits_reasonable_requests() {
        let s = ServerState::new(ServerSpec::default());
        assert!(s.fits(&ResourceRequest::local_model()));
        assert!(s.fits(&ResourceRequest::global_model()));
        assert_eq!(s.load(), 0.0);
    }

    #[test]
    fn claim_then_release_round_trips() {
        let mut s = ServerState::new(ServerSpec::default());
        let req = ResourceRequest::local_model();
        s.claim(&req);
        assert_eq!(s.containers, 1);
        assert!(s.load() > 0.0);
        s.release(&req);
        assert_eq!(s.containers, 0);
        assert_eq!(s.load(), 0.0);
    }

    #[test]
    fn gpu_exhaustion_blocks_further_local_models() {
        let mut s = ServerState::new(ServerSpec::default()); // 2 GPUs
        let req = ResourceRequest::local_model(); // 1 GPU each
        s.claim(&req);
        s.claim(&req);
        assert!(!s.fits(&req), "no third GPU available");
        // But a CPU-only global model still fits.
        assert!(s.fits(&ResourceRequest::global_model()));
    }

    #[test]
    fn load_is_max_across_dimensions() {
        let mut s = ServerState::new(ServerSpec {
            cpu_cores: 10.0,
            gpus: 2.0,
            gpu_tflops: 60.0,
            mem_gib: 100.0,
        });
        s.claim(&ResourceRequest {
            cpu_cores: 1.0,
            gpus: 2.0,
            mem_gib: 10.0,
        });
        assert!(
            (s.load() - 1.0).abs() < 1e-9,
            "GPU-bound load must dominate"
        );
    }

    #[test]
    fn release_never_goes_negative() {
        let mut s = ServerState::new(ServerSpec::default());
        s.release(&ResourceRequest::local_model());
        assert_eq!(s.used_cpu, 0.0);
        assert_eq!(s.containers, 0);
    }
}
