//! # flexsched-compute — the computing substrate
//!
//! Stands in for the paper's "Linux OS and dockers ... deployed in several
//! servers to support AI tasks", managed by the *computing manager*:
//!
//! * [`ModelProfile`] — AI model families with parameter counts, update
//!   sizes and per-iteration compute cost ("AI tasks can be implemented
//!   using different ML models that include different parameters"),
//! * [`ServerSpec`] / [`ServerState`] — server resources and occupancy,
//! * [`Container`] — a docker-like unit hosting a global or local model,
//! * [`ClusterManager`] — placement with pluggable policies (first-fit,
//!   best-fit, least-loaded, spread),
//! * [`training`] — the training- and aggregation-latency models that feed
//!   the total-latency metric of Figure 3a.
//!
//! All durations are plain `u64` nanoseconds so the crate stays independent
//! of the simulator; `flexsched-simnet`'s `SimTime` wraps the same unit.

pub mod container;
pub mod error;
pub mod model;
pub mod placement;
pub mod server;
pub mod training;

pub use container::{Container, ContainerId, ModelRole};
pub use error::ComputeError;
pub use model::ModelProfile;
pub use placement::{ClusterManager, PlacementPolicy};
pub use server::{ServerSpec, ServerState};

/// Convenience result alias for compute operations.
pub type Result<T> = std::result::Result<T, ComputeError>;
