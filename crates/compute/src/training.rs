//! Training- and aggregation-latency models.
//!
//! Figure 3a's metric is "total latency (both model training and
//! communication)". Communication comes from `flexsched-simnet`; this module
//! supplies the compute half:
//!
//! * [`training_iteration_ns`] — one local training iteration: model FLOPs
//!   over the server's effective throughput, degraded by co-location
//!   interference,
//! * [`aggregation_ns`] — merging `n` model updates at an aggregation
//!   point (the multi-aggregation of the flexible scheduler): a streaming
//!   sum over the update bytes at memory bandwidth.

use crate::model::ModelProfile;
use crate::server::ServerSpec;

/// Fraction of peak GPU throughput sustained by real training loops.
const MFU: f64 = 0.35;

/// Throughput loss per co-located container beyond the first.
const INTERFERENCE_PER_NEIGHBOR: f64 = 0.08;

/// Aggregation streaming rate, bytes/ns (≈16 GB/s effective memory-bound
/// elementwise sum including framework overhead).
const AGG_BYTES_PER_NS: f64 = 16.0;

/// Fixed per-aggregation framework overhead, ns.
const AGG_FIXED_NS: f64 = 20_000.0;

/// Duration of one local training iteration, nanoseconds.
///
/// `colocated` is the total number of containers on the server (including
/// this one); co-location degrades effective throughput linearly, floored at
/// 25% of nominal.
pub fn training_iteration_ns(model: &ModelProfile, server: &ServerSpec, colocated: u32) -> u64 {
    let neighbors = colocated.saturating_sub(1) as f64;
    let degradation = (1.0 - INTERFERENCE_PER_NEIGHBOR * neighbors).max(0.25);
    // CPU-only servers fall back to a slow software path.
    let peak_tflops = if server.gpus > 0.0 {
        server.gpu_tflops * server.gpus.min(1.0)
    } else {
        0.5
    };
    let eff_flops_per_ns = peak_tflops * 1e12 * MFU * degradation / 1e9;
    (model.flops_per_iteration / eff_flops_per_ns.max(1e-9)).round() as u64
}

/// Duration of aggregating `inputs` model updates at one node, nanoseconds.
///
/// Aggregation is a streaming elementwise reduction: cost is linear in the
/// bytes reduced. With `inputs <= 1` there is nothing to merge (forwarding
/// only) and the cost is zero — this is what makes relay nodes free and
/// aggregation nodes cheap-but-not-free in the upload tree.
pub fn aggregation_ns(model: &ModelProfile, inputs: usize) -> u64 {
    if inputs <= 1 {
        return 0;
    }
    let bytes = model.update_bytes() as f64 * inputs as f64;
    (AGG_FIXED_NS + bytes / AGG_BYTES_PER_NS).round() as u64
}

/// Convenience: total compute time for `iterations` rounds of local training.
pub fn total_training_ns(
    model: &ModelProfile,
    server: &ServerSpec,
    colocated: u32,
    iterations: u32,
) -> u64 {
    training_iteration_ns(model, server, colocated) * u64::from(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_models_train_slower() {
        let s = ServerSpec::default();
        assert!(
            training_iteration_ns(&ModelProfile::lenet(), &s, 1)
                < training_iteration_ns(&ModelProfile::resnet50(), &s, 1)
        );
        assert!(
            training_iteration_ns(&ModelProfile::resnet50(), &s, 1)
                < training_iteration_ns(&ModelProfile::gpt2_small(), &s, 1)
        );
    }

    #[test]
    fn resnet_iteration_is_sub_second_on_gpu() {
        let ns = training_iteration_ns(&ModelProfile::resnet50(), &ServerSpec::default(), 1);
        // 4.1 GFLOP * 3 * batch32 at ~21 TFLOP/s effective: ~20 ms.
        assert!(ns > 1_000_000 && ns < 100_000_000, "{ns}ns");
    }

    #[test]
    fn interference_slows_training() {
        let s = ServerSpec::default();
        let alone = training_iteration_ns(&ModelProfile::resnet50(), &s, 1);
        let crowded = training_iteration_ns(&ModelProfile::resnet50(), &s, 5);
        assert!(crowded > alone);
    }

    #[test]
    fn interference_floors_at_quarter_speed() {
        let s = ServerSpec::default();
        let crowded = training_iteration_ns(&ModelProfile::resnet50(), &s, 100);
        let alone = training_iteration_ns(&ModelProfile::resnet50(), &s, 1);
        assert!(crowded <= alone * 4 + 1);
    }

    #[test]
    fn cpu_only_servers_are_much_slower() {
        let gpu = ServerSpec::default();
        let cpu = ServerSpec {
            gpus: 0.0,
            ..ServerSpec::default()
        };
        let m = ModelProfile::mobilenet();
        assert!(training_iteration_ns(&m, &cpu, 1) > 20 * training_iteration_ns(&m, &gpu, 1));
    }

    #[test]
    fn aggregating_one_input_is_free() {
        assert_eq!(aggregation_ns(&ModelProfile::resnet50(), 0), 0);
        assert_eq!(aggregation_ns(&ModelProfile::resnet50(), 1), 0);
    }

    #[test]
    fn aggregation_scales_with_inputs_and_size() {
        let m = ModelProfile::resnet50();
        let two = aggregation_ns(&m, 2);
        let four = aggregation_ns(&m, 4);
        assert!(four > two);
        let small = aggregation_ns(&ModelProfile::lenet(), 4);
        assert!(small < four);
    }

    #[test]
    fn aggregation_is_fast_relative_to_transfer() {
        // Aggregating 4 ResNet updates (~400 MB) should take ~25 ms — the
        // same order as moving one update over 100G, not dominating it.
        let ns = aggregation_ns(&ModelProfile::resnet50(), 4);
        assert!(ns < 100_000_000, "{ns}ns");
    }

    #[test]
    fn total_training_multiplies_iterations() {
        let s = ServerSpec::default();
        let m = ModelProfile::lenet();
        assert_eq!(
            total_training_ns(&m, &s, 1, 10),
            training_iteration_ns(&m, &s, 1) * 10
        );
    }
}
