//! Containers: docker-like units hosting global or local models.

use crate::model::ModelProfile;
use crate::server::ResourceRequest;
use flexsched_topo::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a placed container.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ContainerId(pub u64);

impl fmt::Display for ContainerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Whether a container hosts the global model or a local model replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelRole {
    /// The aggregating global model (one per task).
    Global,
    /// A local training replica.
    Local,
}

/// A placed container.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Container {
    /// Identifier assigned by the cluster manager.
    pub id: ContainerId,
    /// Host server.
    pub server: NodeId,
    /// Owning AI-task id (task crate scope).
    pub task: u64,
    /// Global or local replica.
    pub role: ModelRole,
    /// Model hosted.
    pub model: ModelProfile,
    /// Resources claimed.
    pub resources: ResourceRequest,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_id() {
        assert_eq!(ContainerId(4).to_string(), "c4");
    }

    #[test]
    fn roles_are_distinguishable() {
        assert_ne!(ModelRole::Global, ModelRole::Local);
    }
}
