//! DAG workload-stream contracts, in the mould of the PR 6 class-stream
//! pins:
//!
//! * **Byte-identity of the monolithic draws.** The [`JobStream`] draws
//!   every DAG-shape decision from its own fourth RNG stream, so the
//!   embedded stage tasks must equal — field for field — the task
//!   sequence a plain [`WorkloadStream`] yields for the same seed. DAG
//!   structure is an overlay, never a perturbation.
//! * **Determinism + structural validity.** One seed, one job sequence:
//!   two streams with identical configs agree exactly, and every emitted
//!   job validates (dense stage ids, in-range duplicate-free edges,
//!   acyclic).
//!
//! Run with `PROPTEST_CASES=256` in nightly-deep.

use flexsched_task::{DagConfig, JobStream, WorkloadConfig, WorkloadStream};
use flexsched_topo::builders;
use proptest::prelude::*;

fn topo() -> flexsched_topo::Topology {
    builders::metro(&builders::MetroParams::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite pin: monolithic-task draws stay byte-identical when the
    /// same seed is consumed through the DAG seam.
    #[test]
    fn job_stream_preserves_monolithic_draws(
        seed in 0u64..1000,
        locals in 2usize..6,
        stages_hi in 3u32..7,
        fanin in 0u32..100,
    ) {
        let topo = topo();
        let cfg = WorkloadConfig {
            locals_per_task: locals,
            seed,
            // Six jobs can embed more stage tasks than the default 30-task
            // cap; the plain reference stream must not run dry first.
            num_tasks: 64,
            ..WorkloadConfig::default()
        };
        let dag = DagConfig {
            num_jobs: 6,
            stages: (2, stages_hi),
            fanin_pct: fanin,
            ..DagConfig::default()
        };

        // Enough plain tasks to cover every stage the six jobs can embed.
        let mut plain = WorkloadStream::new(&topo, &cfg);
        let jobs: Vec<_> = JobStream::new(&topo, &cfg, dag).collect();
        prop_assert_eq!(jobs.len(), 6);
        for job in &jobs {
            for stage in &job.stages {
                let reference = plain.next().expect("plain stream yields >= stage count");
                prop_assert_eq!(&stage.task, &reference,
                    "embedded stage task diverged from the plain stream");
            }
        }
    }

    /// One seed, one job sequence — and every job is a valid DAG.
    #[test]
    fn job_stream_is_deterministic_and_acyclic(
        seed in 0u64..1000,
        fanin in 0u32..100,
    ) {
        let topo = topo();
        let cfg = WorkloadConfig { seed, ..WorkloadConfig::default() };
        let dag = DagConfig { num_jobs: 5, fanin_pct: fanin, ..DagConfig::default() };
        let a: Vec<_> = JobStream::new(&topo, &cfg, dag.clone()).collect();
        let b: Vec<_> = JobStream::new(&topo, &cfg, dag).collect();
        prop_assert_eq!(&a, &b, "same seed must yield the same jobs");
        let mut seen_task_ids = std::collections::BTreeSet::new();
        for job in &a {
            prop_assert!(job.validate().is_ok());
            prop_assert!(job.topo_order().is_some());
            prop_assert!(!job.roots().is_empty());
            for id in job.task_ids() {
                prop_assert!(seen_task_ids.insert(id), "stage task ids must be globally unique");
            }
        }
    }
}

/// Deterministic pin: DAG-shape knobs move only the shape. Cranking the
/// fan-in probability (or widening the stage range) never changes which
/// task parameterisation lands in a given draw position.
#[test]
fn dag_shape_knobs_do_not_move_task_draws() {
    let topo = topo();
    let cfg = WorkloadConfig {
        seed: 42,
        ..WorkloadConfig::default()
    };
    let chains = DagConfig {
        num_jobs: 4,
        fanin_pct: 0,
        ..DagConfig::default()
    };
    let diamonds = DagConfig {
        num_jobs: 4,
        fanin_pct: 100,
        ..DagConfig::default()
    };
    let a: Vec<_> = JobStream::new(&topo, &cfg, chains)
        .flat_map(|j| j.stages.into_iter().map(|s| s.task))
        .collect();
    let b: Vec<_> = JobStream::new(&topo, &cfg, diamonds)
        .flat_map(|j| j.stages.into_iter().map(|s| s.task))
        .collect();
    let n = a.len().min(b.len());
    assert!(n > 0);
    assert_eq!(
        &a[..n],
        &b[..n],
        "shape knobs leaked into the task parameter streams"
    );
}
