//! Stage-DAG model for distributed-AI jobs.
//!
//! The poster schedules each AI task as one monolithic placement + tree
//! decision. Real training/inference jobs are DAGs of *stages* — data-
//! parallel epochs, pipeline stages, all-reduce / parameter-server phases
//! — whose inter-stage transfers ride the same optical/IP fabric. An
//! [`AiJob`] models that: every [`Stage`] wraps its own [`AiTask`] (so the
//! whole snapshot → propose → commit pipeline applies per stage,
//! unchanged), and [`DataEdge`]s carry the data items handed from one
//! stage to the next.
//!
//! The graph math lives here; frontier tracking against a running
//! simulation lives in `flexsched-sched`'s `dag` module.

use crate::task::{AiTask, ServiceClass, TaskId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Identity of a stage-DAG job (distinct from the per-stage [`TaskId`]s).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct JobId(pub u64);

/// What a stage does; kinds shape nothing in the commit pipeline (every
/// stage is an [`AiTask`] with its own tree) but label the workload for
/// metrics and generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StageKind {
    /// A (data-parallel) compute phase: locals train against the global.
    Compute,
    /// A synchronisation phase: all-reduce / parameter-server exchange.
    AllReduce,
    /// A pipeline hand-off moving activations/weights between site groups.
    PipelineTransfer,
}

impl StageKind {
    /// Short label for metrics and traces.
    pub fn label(&self) -> &'static str {
        match self {
            StageKind::Compute => "compute",
            StageKind::AllReduce => "all-reduce",
            StageKind::PipelineTransfer => "pipeline",
        }
    }
}

/// One stage of a job: a typed wrapper around its own [`AiTask`]. The
/// task's id is globally unique, so the database ledger, footprints and
/// repair machinery all apply to stages without modification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Dense stage index within the job: `job.stages[i].id == i`.
    pub id: u32,
    /// What the stage does (labelling only).
    pub kind: StageKind,
    /// The schedulable unit: placement sites, model, demand, iterations.
    pub task: AiTask,
}

/// A data item produced by stage `from` and consumed by stage `to`:
/// `gbit` is its size. The successor cannot start until the item has
/// drained over the fabric, which takes `gbit / producer-demand` seconds
/// (the producer's committed tree is the pipe it leaves on).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataEdge {
    /// Producing stage id.
    pub from: u32,
    /// Consuming stage id.
    pub to: u32,
    /// Data item size, Gbit.
    pub gbit: f64,
}

/// A distributed-AI job as a DAG of typed stages with data-item edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AiJob {
    /// Job identity.
    pub id: JobId,
    /// Stages, densely indexed: `stages[i].id == i`.
    pub stages: Vec<Stage>,
    /// Data-item edges; validated acyclic and duplicate-free.
    pub edges: Vec<DataEdge>,
    /// Arrival time of the job (its root frontier becomes ready here).
    pub arrival_ns: u64,
    /// Service class the whole job is admitted under.
    pub class: ServiceClass,
}

impl AiJob {
    /// Structural validation: stages densely indexed, every stage task
    /// valid, edges in range / self-loop-free / duplicate-free, and the
    /// graph acyclic.
    pub fn validate(&self) -> Result<(), String> {
        if self.stages.is_empty() {
            return Err("job has no stages".into());
        }
        for (i, s) in self.stages.iter().enumerate() {
            if s.id as usize != i {
                return Err(format!(
                    "stage ids must be dense: stage {i} has id {}",
                    s.id
                ));
            }
            s.task.validate()?;
        }
        let n = self.stages.len() as u32;
        let mut seen = BTreeSet::new();
        for e in &self.edges {
            if e.from >= n || e.to >= n {
                return Err(format!("edge {}->{} out of range", e.from, e.to));
            }
            if e.from == e.to {
                return Err(format!("self-loop on stage {}", e.from));
            }
            if !seen.insert((e.from, e.to)) {
                return Err(format!("duplicate edge {}->{}", e.from, e.to));
            }
            if e.gbit.is_nan() || e.gbit <= 0.0 {
                return Err(format!("edge {}->{} carries no data", e.from, e.to));
            }
        }
        if self.topo_order().is_none() {
            return Err("stage graph has a cycle".into());
        }
        Ok(())
    }

    /// The stage with id `sid`, if in range.
    pub fn stage(&self, sid: u32) -> Option<&Stage> {
        self.stages.get(sid as usize)
    }

    /// Ids of stages feeding data into `sid`.
    pub fn predecessors(&self, sid: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.to == sid)
            .map(|e| e.from)
    }

    /// Ids of stages consuming `sid`'s output.
    pub fn successors(&self, sid: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter(move |e| e.from == sid)
            .map(|e| e.to)
    }

    /// Stages with no predecessors — the initial ready frontier.
    pub fn roots(&self) -> Vec<u32> {
        (0..self.stages.len() as u32)
            .filter(|s| self.predecessors(*s).next().is_none())
            .collect()
    }

    /// Stages whose predecessors have all completed and which have not
    /// themselves completed — the gang-admission frontier.
    pub fn ready_frontier(&self, completed: &BTreeSet<u32>) -> Vec<u32> {
        (0..self.stages.len() as u32)
            .filter(|s| !completed.contains(s))
            .filter(|s| self.predecessors(*s).all(|p| completed.contains(&p)))
            .collect()
    }

    /// Kahn topological order, or `None` if the edge set has a cycle.
    pub fn topo_order(&self) -> Option<Vec<u32>> {
        let n = self.stages.len();
        let mut indeg = vec![0usize; n];
        for e in &self.edges {
            if (e.to as usize) < n {
                indeg[e.to as usize] += 1;
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).filter(|s| indeg[*s as usize] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let s = queue[head];
            head += 1;
            order.push(s);
            for t in self.successors(s) {
                indeg[t as usize] -= 1;
                if indeg[t as usize] == 0 {
                    queue.push(t);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// Time for `e`'s data item to drain onto the fabric: size over the
    /// producer's committed per-tree demand (the pipe it leaves on).
    pub fn edge_transfer_ns(&self, e: &DataEdge) -> u64 {
        let rate = self.stages[e.from as usize].task.demand_gbps().max(1e-9);
        (e.gbit / rate * 1e9) as u64
    }

    /// Longest path through the DAG — the job's ideal makespan — with
    /// per-stage durations supplied by `duration_ns` and edge hand-off
    /// times from [`edge_transfer_ns`](AiJob::edge_transfer_ns). Returns 0
    /// on a cyclic graph (which [`validate`](AiJob::validate) rejects).
    pub fn critical_path_ns(&self, duration_ns: impl Fn(u32) -> u64) -> u64 {
        let Some(order) = self.topo_order() else {
            return 0;
        };
        // finish[s] = earliest finish of s with unlimited resources.
        let mut finish = vec![0u64; self.stages.len()];
        for s in order {
            let start = self
                .edges
                .iter()
                .filter(|e| e.to == s)
                .map(|e| finish[e.from as usize] + self.edge_transfer_ns(e))
                .max()
                .unwrap_or(0);
            finish[s as usize] = start + duration_ns(s);
        }
        finish.into_iter().max().unwrap_or(0)
    }

    /// Per-stage task ids, in stage order.
    pub fn task_ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.stages.iter().map(|s| s.task.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_compute::ModelProfile;

    fn stage_task(id: u64) -> AiTask {
        AiTask {
            id: TaskId(id),
            model: ModelProfile::mobilenet(),
            global_site: flexsched_topo::NodeId(0),
            local_sites: vec![flexsched_topo::NodeId(1)],
            data_utility: Default::default(),
            iterations: 1,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: Default::default(),
        }
    }

    /// Diamond: 0 -> {1, 2} -> 3.
    fn diamond() -> AiJob {
        let kinds = [
            StageKind::Compute,
            StageKind::Compute,
            StageKind::PipelineTransfer,
            StageKind::AllReduce,
        ];
        AiJob {
            id: JobId(7),
            stages: (0..4)
                .map(|i| Stage {
                    id: i,
                    kind: kinds[i as usize],
                    task: stage_task(100 + i as u64),
                })
                .collect(),
            edges: vec![
                DataEdge {
                    from: 0,
                    to: 1,
                    gbit: 2.0,
                },
                DataEdge {
                    from: 0,
                    to: 2,
                    gbit: 1.0,
                },
                DataEdge {
                    from: 1,
                    to: 3,
                    gbit: 4.0,
                },
                DataEdge {
                    from: 2,
                    to: 3,
                    gbit: 4.0,
                },
            ],
            arrival_ns: 0,
            class: Default::default(),
        }
    }

    #[test]
    fn diamond_validates_and_orders() {
        let job = diamond();
        job.validate().unwrap();
        assert_eq!(job.roots(), vec![0]);
        let order = job.topo_order().unwrap();
        assert_eq!(order.len(), 4);
        assert_eq!(order[0], 0);
        assert_eq!(*order.last().unwrap(), 3);
    }

    #[test]
    fn frontier_tracks_completions() {
        let job = diamond();
        let mut done = BTreeSet::new();
        assert_eq!(job.ready_frontier(&done), vec![0]);
        done.insert(0);
        assert_eq!(job.ready_frontier(&done), vec![1, 2]);
        done.insert(1);
        // 3 still waits on 2.
        assert_eq!(job.ready_frontier(&done), vec![2]);
        done.insert(2);
        assert_eq!(job.ready_frontier(&done), vec![3]);
        done.insert(3);
        assert!(job.ready_frontier(&done).is_empty());
    }

    #[test]
    fn cycle_is_rejected() {
        let mut job = diamond();
        job.edges.push(DataEdge {
            from: 3,
            to: 0,
            gbit: 1.0,
        });
        assert!(job.validate().unwrap_err().contains("cycle"));
    }

    #[test]
    fn duplicate_and_self_edges_are_rejected() {
        let mut dup = diamond();
        dup.edges.push(DataEdge {
            from: 0,
            to: 1,
            gbit: 1.0,
        });
        assert!(dup.validate().unwrap_err().contains("duplicate"));
        let mut selfy = diamond();
        selfy.edges.push(DataEdge {
            from: 2,
            to: 2,
            gbit: 1.0,
        });
        assert!(selfy.validate().unwrap_err().contains("self-loop"));
    }

    #[test]
    fn critical_path_takes_the_longest_branch() {
        let job = diamond();
        // Equal stage durations: the path through stage 1 (2 Gbit in) and
        // the path through stage 2 (1 Gbit in) differ only in edge time.
        let cp = job.critical_path_ns(|_| 1_000_000);
        let e01 = job.edge_transfer_ns(&job.edges[0]);
        let e13 = job.edge_transfer_ns(&job.edges[2]);
        assert_eq!(cp, 3_000_000 + e01 + e13);
        // A slower stage 2 flips the critical branch.
        let cp2 = job.critical_path_ns(|s| if s == 2 { 1_000_000_000 } else { 1_000_000 });
        let e02 = job.edge_transfer_ns(&job.edges[1]);
        let e23 = job.edge_transfer_ns(&job.edges[3]);
        assert_eq!(cp2, 1_000_000 + 1_000_000_000 + 1_000_000 + e02 + e23);
    }

    #[test]
    fn transfer_time_scales_with_item_size() {
        let job = diamond();
        let small = job.edge_transfer_ns(&job.edges[1]); // 1 Gbit
        let big = job.edge_transfer_ns(&job.edges[0]); // 2 Gbit
        assert!(big > small);
        assert!((big as f64 / small as f64 - 2.0).abs() < 1e-3);
    }
}
