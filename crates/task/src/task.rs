//! The distributed AI task record.

use flexsched_compute::ModelProfile;
use flexsched_topo::NodeId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of an AI task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TaskId(pub u64);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Tenant service class of a task — the admission-control and degradation
/// tier it is scheduled under when the control plane is overloaded.
///
/// * [`Critical`](ServiceClass::Critical) tasks always get the full
///   flexible scheduling decision and are never shed by watermark trips.
/// * [`Standard`](ServiceClass::Standard) tasks degrade to the cheap
///   fixed-tree scheduler under overload and may be rate-limited.
/// * [`BestEffort`](ServiceClass::BestEffort) tasks absorb the shedding:
///   they are the first to be turned away when token buckets drain.
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum ServiceClass {
    /// Latency/availability-sensitive tenant; never degraded or shed by
    /// watermark trips.
    Critical,
    /// Default tier: full service normally, degraded decision quality
    /// under overload.
    #[default]
    Standard,
    /// Scavenger tier: admitted only when capacity is spare.
    BestEffort,
}

impl ServiceClass {
    /// All classes, highest priority first. Stable order used for
    /// per-class metric arrays.
    pub const ALL: [ServiceClass; 3] = [
        ServiceClass::Critical,
        ServiceClass::Standard,
        ServiceClass::BestEffort,
    ];

    /// Dense index into per-class arrays (same order as [`ALL`](Self::ALL)).
    pub fn index(self) -> usize {
        match self {
            ServiceClass::Critical => 0,
            ServiceClass::Standard => 1,
            ServiceClass::BestEffort => 2,
        }
    }

    /// Short lowercase label for metric names and logs.
    pub fn label(self) -> &'static str {
        match self {
            ServiceClass::Critical => "critical",
            ServiceClass::Standard => "standard",
            ServiceClass::BestEffort => "best-effort",
        }
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A distributed AI task: one global model, `N` local models.
///
/// Sites are *server nodes* of the topology. The global site hosts the
/// aggregating model; local sites train on their private data. Each local
/// site carries a `data_utility` score in `(0, 1]` modelling how useful its
/// local data is to the global model — the signal behind open challenge #1
/// ("strategically select only those local models containing useful data").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AiTask {
    /// Identifier.
    pub id: TaskId,
    /// Model family trained by this task.
    pub model: ModelProfile,
    /// Server hosting the global model.
    pub global_site: NodeId,
    /// Servers hosting local models (distinct, never the global site).
    pub local_sites: Vec<NodeId>,
    /// Data utility per local site.
    pub data_utility: BTreeMap<NodeId, f64>,
    /// Synchronisation rounds to run.
    pub iterations: u32,
    /// Communication budget per procedure, milliseconds — determines the
    /// bandwidth demand the task requests from the network.
    pub comm_budget_ms: f64,
    /// Arrival time, nanoseconds since scenario start.
    pub arrival_ns: u64,
    /// Tenant service class — the admission/degradation tier.
    pub class: ServiceClass,
}

impl AiTask {
    /// Bandwidth demand per model-update flow, Gbit/s.
    pub fn demand_gbps(&self) -> f64 {
        self.model.demand_gbps(self.comm_budget_ms)
    }

    /// Number of local models.
    pub fn num_locals(&self) -> usize {
        self.local_sites.len()
    }

    /// Bytes of one model update.
    pub fn update_bytes(&self) -> u64 {
        self.model.update_bytes()
    }

    /// Utility of a site (0 if unknown).
    pub fn utility_of(&self, site: NodeId) -> f64 {
        self.data_utility.get(&site).copied().unwrap_or(0.0)
    }

    /// Local sites sorted by descending utility (ties by ascending id).
    pub fn sites_by_utility(&self) -> Vec<NodeId> {
        let mut v = self.local_sites.clone();
        v.sort_by(|a, b| {
            self.utility_of(*b)
                .partial_cmp(&self.utility_of(*a))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        v
    }

    /// Structural sanity: distinct local sites, none equal to the global.
    pub fn validate(&self) -> Result<(), String> {
        if self.local_sites.is_empty() {
            return Err(format!("{}: no local sites", self.id));
        }
        let mut seen = std::collections::BTreeSet::new();
        for s in &self.local_sites {
            if *s == self.global_site {
                return Err(format!("{}: local site {s} equals global site", self.id));
            }
            if !seen.insert(*s) {
                return Err(format!("{}: duplicate local site {s}", self.id));
            }
        }
        if self.iterations == 0 {
            return Err(format!("{}: zero iterations", self.id));
        }
        if self.comm_budget_ms <= 0.0 {
            return Err(format!("{}: non-positive budget", self.id));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task() -> AiTask {
        let mut utility = BTreeMap::new();
        utility.insert(NodeId(1), 0.9);
        utility.insert(NodeId(2), 0.2);
        utility.insert(NodeId(3), 0.6);
        AiTask {
            id: TaskId(0),
            model: ModelProfile::resnet50(),
            global_site: NodeId(0),
            local_sites: vec![NodeId(1), NodeId(2), NodeId(3)],
            data_utility: utility,
            iterations: 5,
            comm_budget_ms: 10.0,
            arrival_ns: 0,
            class: ServiceClass::default(),
        }
    }

    #[test]
    fn demand_follows_model_and_budget() {
        let t = task();
        assert!((t.demand_gbps() - t.model.demand_gbps(10.0)).abs() < 1e-12);
        // ResNet50 fp32 ~102 MB in 10 ms ~ 82 Gbps.
        assert!(t.demand_gbps() > 50.0 && t.demand_gbps() < 120.0);
    }

    #[test]
    fn sites_by_utility_sorts_descending() {
        let t = task();
        assert_eq!(t.sites_by_utility(), vec![NodeId(1), NodeId(3), NodeId(2)]);
    }

    #[test]
    fn unknown_site_has_zero_utility() {
        assert_eq!(task().utility_of(NodeId(99)), 0.0);
    }

    #[test]
    fn validation_catches_duplicates() {
        let mut t = task();
        t.local_sites.push(NodeId(1));
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_global_among_locals() {
        let mut t = task();
        t.local_sites.push(NodeId(0));
        assert!(t.validate().is_err());
    }

    #[test]
    fn validation_catches_degenerate_params() {
        let mut t = task();
        t.iterations = 0;
        assert!(t.validate().is_err());
        let mut t2 = task();
        t2.comm_budget_ms = 0.0;
        assert!(t2.validate().is_err());
        let mut t3 = task();
        t3.local_sites.clear();
        assert!(t3.validate().is_err());
    }

    #[test]
    fn valid_task_passes() {
        task().validate().unwrap();
    }

    #[test]
    fn service_class_defaults_to_standard() {
        assert_eq!(ServiceClass::default(), ServiceClass::Standard);
        assert_eq!(task().class, ServiceClass::Standard);
    }

    #[test]
    fn service_class_indices_match_all_order() {
        for (i, c) in ServiceClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        // Priority order: Critical outranks Standard outranks BestEffort.
        assert!(ServiceClass::Critical < ServiceClass::Standard);
        assert!(ServiceClass::Standard < ServiceClass::BestEffort);
    }

    #[test]
    fn service_class_labels_are_distinct() {
        let labels: std::collections::BTreeSet<_> =
            ServiceClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 3);
        assert_eq!(ServiceClass::BestEffort.to_string(), "best-effort");
    }
}
