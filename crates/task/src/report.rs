//! Measured task outcomes: the raw data behind Figures 3a and 3b.

use crate::task::TaskId;
use serde::{Deserialize, Serialize};

/// What one scheduled task cost, per iteration and in total.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskReport {
    /// The task measured.
    pub task: TaskId,
    /// Scheduler that produced the schedule (for labelling output).
    pub scheduler: String,
    /// Number of local models actually scheduled (after selection).
    pub locals_scheduled: usize,
    /// Per-iteration local training latency, ns (max across locals).
    pub training_ns: u64,
    /// Per-iteration broadcast completion latency, ns.
    pub broadcast_ns: u64,
    /// Per-iteration upload completion latency, ns (includes in-network
    /// aggregation time along the tree).
    pub upload_ns: u64,
    /// Aggregation compute on the critical path, ns (already included in
    /// `upload_ns`; broken out for ablation reporting).
    pub aggregation_ns: u64,
    /// Iterations executed.
    pub iterations: u32,
    /// Bandwidth the schedule holds while active: sum over directed links of
    /// reserved Gbit/s (the Figure-3b metric).
    pub bandwidth_gbps: f64,
    /// Times the task was rescheduled during its lifetime.
    pub reschedules: u32,
}

impl TaskReport {
    /// Per-iteration total latency, ns: training + communication.
    pub fn iteration_ns(&self) -> u64 {
        self.training_ns + self.broadcast_ns + self.upload_ns
    }

    /// Total latency over all iterations, ns (the Figure-3a quantity, which
    /// the paper reports per-iteration-averaged; see `iteration_ms`).
    pub fn total_ns(&self) -> u64 {
        self.iteration_ns() * u64::from(self.iterations.max(1))
    }

    /// Per-iteration latency in milliseconds (the units of Figure 3a).
    pub fn iteration_ms(&self) -> f64 {
        self.iteration_ns() as f64 / 1e6
    }

    /// Communication share of an iteration in `[0, 1]`.
    pub fn comm_fraction(&self) -> f64 {
        let total = self.iteration_ns();
        if total == 0 {
            return 0.0;
        }
        (self.broadcast_ns + self.upload_ns) as f64 / total as f64
    }
}

/// Aggregate a slice of reports into (mean iteration latency ms, total
/// bandwidth Gbps) — one point of Figures 3a/3b.
pub fn aggregate(reports: &[TaskReport]) -> (f64, f64) {
    if reports.is_empty() {
        return (0.0, 0.0);
    }
    let mean_ms = reports.iter().map(TaskReport::iteration_ms).sum::<f64>() / reports.len() as f64;
    let bw = reports.iter().map(|r| r.bandwidth_gbps).sum::<f64>();
    (mean_ms, bw)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(training: u64, bcast: u64, upload: u64) -> TaskReport {
        TaskReport {
            task: TaskId(0),
            scheduler: "test".into(),
            locals_scheduled: 3,
            training_ns: training,
            broadcast_ns: bcast,
            upload_ns: upload,
            aggregation_ns: 0,
            iterations: 4,
            bandwidth_gbps: 10.0,
            reschedules: 0,
        }
    }

    #[test]
    fn iteration_sums_components() {
        let r = report(100, 30, 50);
        assert_eq!(r.iteration_ns(), 180);
        assert_eq!(r.total_ns(), 720);
    }

    #[test]
    fn iteration_ms_converts_units() {
        let r = report(1_000_000, 500_000, 500_000);
        assert!((r.iteration_ms() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn comm_fraction_in_bounds() {
        let r = report(100, 100, 100);
        assert!((r.comm_fraction() - 2.0 / 3.0).abs() < 1e-12);
        let idle = report(0, 0, 0);
        assert_eq!(idle.comm_fraction(), 0.0);
    }

    #[test]
    fn aggregate_means_latency_and_sums_bandwidth() {
        let (ms, bw) = aggregate(&[report(1_000_000, 0, 0), report(3_000_000, 0, 0)]);
        assert!((ms - 2.0).abs() < 1e-12);
        assert!((bw - 20.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_of_empty_is_zero() {
        assert_eq!(aggregate(&[]), (0.0, 0.0));
    }
}
