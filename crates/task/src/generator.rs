//! Seeded workload generation: "We generate 30 AI tasks to evaluate the
//! proposed scheduling policy".

use crate::dag::{AiJob, DataEdge, JobId, Stage, StageKind};
use crate::task::{AiTask, ServiceClass, TaskId};
use flexsched_compute::ModelProfile;
use flexsched_topo::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Inter-arrival process for generated workloads.
///
/// All three processes consume exactly one uniform draw per task from the
/// parameter stream, so switching processes never perturbs the other task
/// parameters (model, iterations, budget) of a given seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential gaps with the configured mean.
    /// This is the paper's evaluation process and the default.
    Poisson,
    /// Heavy-tailed gaps (Pareto with shape `alpha > 1`), scaled so the
    /// mean gap matches the configured mean. Small `alpha` (e.g. 1.5)
    /// yields machine-gun bursts separated by long silences — the
    /// overload harness's storm fuel.
    Pareto {
        /// Tail exponent; must be `> 1` for a finite mean.
        alpha: f64,
    },
    /// Diurnal rate modulation: exponential gaps whose mean swings
    /// sinusoidally around the configured mean with the given period.
    /// `trough_to_peak` in `(0, 1]` is the ratio of the slowest to the
    /// fastest arrival rate (1.0 degenerates to Poisson).
    Diurnal {
        /// Modulation period, ns of scenario time.
        period_ns: u64,
        /// Ratio of trough arrival rate to peak arrival rate, `(0, 1]`.
        trough_to_peak: f64,
    },
}

impl ArrivalProcess {
    /// Gap to the next arrival given a uniform draw `u ∈ (0, 1)`, the
    /// configured mean gap, and the current scenario time (for diurnal
    /// modulation).
    fn gap_ns(self, u: f64, mean_ns: u64, now_ns: u64) -> u64 {
        let mean = mean_ns as f64;
        let gap = match self {
            // No clamp: byte-identical to the pre-tenant generator so
            // every seeded scenario in the repo replays unchanged.
            ArrivalProcess::Poisson => return (-u.ln() * mean).round() as u64,
            ArrivalProcess::Pareto { alpha } => {
                assert!(alpha > 1.0, "Pareto arrivals need alpha > 1, got {alpha}");
                // Scale x_m so E[gap] = x_m * alpha / (alpha - 1) = mean.
                let x_m = mean * (alpha - 1.0) / alpha;
                x_m * u.powf(-1.0 / alpha)
            }
            ArrivalProcess::Diurnal {
                period_ns,
                trough_to_peak,
            } => {
                assert!(
                    trough_to_peak > 0.0 && trough_to_peak <= 1.0,
                    "trough_to_peak must be in (0, 1], got {trough_to_peak}"
                );
                // Rate multiplier swings between trough_to_peak and 1 with
                // mean (1 + trough_to_peak) / 2; renormalise so the
                // long-run mean gap stays the configured mean.
                let phase = (now_ns % period_ns.max(1)) as f64 / period_ns.max(1) as f64;
                let swing = (1.0 - trough_to_peak) / 2.0;
                let rate_mult = (1.0 + trough_to_peak) / 2.0
                    + swing * (2.0 * std::f64::consts::PI * phase).sin();
                let mean_rate = (1.0 + trough_to_peak) / 2.0;
                -u.ln() * mean * mean_rate / rate_mult
            }
        };
        (gap.round() as u64).max(1)
    }
}

/// Per-class workload weights `[critical, standard, best-effort]`; tasks
/// draw their [`ServiceClass`] proportionally to these.
pub type ClassMix = [u32; 3];

/// The production-flavoured tenant mix the overload harness drives:
/// 10% critical, 60% standard, 30% best-effort.
pub const PRODUCTION_CLASS_MIX: ClassMix = [1, 6, 3];

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of tasks (the paper uses 30).
    pub num_tasks: usize,
    /// Local models per task. The evaluation sweeps this from a few up
    /// to 15.
    pub locals_per_task: usize,
    /// Indices into [`ModelProfile::catalog`] to draw models from.
    pub model_mix: Vec<usize>,
    /// Iterations per task, inclusive range.
    pub iterations: (u32, u32),
    /// Communication budget per procedure, ms, inclusive range.
    pub comm_budget_ms: (f64, f64),
    /// Mean inter-arrival gap between tasks, ns.
    pub mean_interarrival_ns: u64,
    /// Inter-arrival process shaping the gaps around that mean.
    pub arrival_process: ArrivalProcess,
    /// Service-class weights `[critical, standard, best-effort]`. The
    /// default is all-Standard, matching pre-tenant workloads.
    pub class_mix: ClassMix,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_tasks: 30,
            locals_per_task: 5,
            // Small-to-mid models: the testbed trains edge-scale CV models
            // (lenet / mobilenet); larger profiles are exercised by the
            // transport and ablation scenarios.
            model_mix: vec![0, 1, 1],
            iterations: (3, 10),
            comm_budget_ms: (10.0, 40.0),
            mean_interarrival_ns: 2_000_000, // 2 ms
            arrival_process: ArrivalProcess::Poisson,
            class_mix: [0, 1, 0],
            seed: 2024,
        }
    }
}

impl WorkloadConfig {
    /// The Figure-3 sweep point with `n` local models per task: 30 tasks,
    /// paper defaults otherwise.
    pub fn paper_sweep(n: usize, seed: u64) -> Self {
        WorkloadConfig {
            locals_per_task: n,
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// Default parameters with an explicit seed — the constructor tests
    /// should use, so every random draw is pinned at the test site and a
    /// failure replays from the seed alone instead of depending on the
    /// crate-wide default staying what it was.
    pub fn seeded(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// [`seeded`](WorkloadConfig::seeded) with the task and local-model
    /// counts overridden — the shape orchestrator scenario tests draw.
    pub fn seeded_scenario(seed: u64, num_tasks: usize, locals_per_task: usize) -> Self {
        WorkloadConfig {
            num_tasks,
            locals_per_task,
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// Tenant-aware variant: [`PRODUCTION_CLASS_MIX`] classes over the
    /// default parameters. The overload and fault-storm harnesses use
    /// this shape.
    pub fn tenant_scenario(seed: u64, num_tasks: usize, locals_per_task: usize) -> Self {
        WorkloadConfig {
            class_mix: PRODUCTION_CLASS_MIX,
            ..WorkloadConfig::seeded_scenario(seed, num_tasks, locals_per_task)
        }
    }
}

/// Draw a service class from the mix using one uniform draw from the
/// dedicated class stream.
fn draw_class(mix: ClassMix, rng: &mut StdRng) -> ServiceClass {
    let total: u32 = mix.iter().sum();
    assert!(
        total > 0,
        "class_mix must have at least one non-zero weight"
    );
    let mut pick = rng.random_range(0..total);
    for (slot, weight) in mix.iter().enumerate() {
        if pick < *weight {
            return ServiceClass::ALL[slot];
        }
        pick -= weight;
    }
    unreachable!("pick < total by construction")
}

/// A lazy, deterministic stream of workload tasks.
///
/// Event-driven drivers pull one task at a time — each arrival event pulls
/// the next task and schedules itself at that task's `arrival_ns` — so a
/// million-task horizon never materialises a million-element `Vec`. The
/// stream performs *exactly* the same RNG draws in the same order as
/// [`generate_workload`] (which is now implemented on top of it), so
/// pulling `num_tasks` tasks yields byte-identical workloads either way.
///
/// # Panics
/// `new` panics if the topology has fewer than `locals_per_task + 1`
/// servers; pulling panics if `model_mix` indexes outside the catalog.
#[derive(Debug, Clone)]
pub struct WorkloadStream {
    cfg: WorkloadConfig,
    servers: Vec<NodeId>,
    catalog: Vec<ModelProfile>,
    rng_params: StdRng,
    rng_sites: StdRng,
    rng_class: StdRng,
    arrival: u64,
    produced: u64,
}

impl WorkloadStream {
    /// Start a stream over the topology's servers with the given config.
    pub fn new(topo: &Topology, cfg: &WorkloadConfig) -> Self {
        let servers = topo.servers();
        assert!(
            servers.len() > cfg.locals_per_task,
            "need at least {} servers, topology has {}",
            cfg.locals_per_task + 1,
            servers.len()
        );
        // Three independent streams: task parameters (model, iterations,
        // budget, arrival) are drawn separately from site choices, so
        // sweeping `locals_per_task` changes only the sites — the Figure-3
        // sweep points are paired experiments over the same 30 task
        // parameterisations. The class stream is likewise separate so
        // changing the tenant mix keeps both the parameters and the
        // placement of every task.
        WorkloadStream {
            cfg: cfg.clone(),
            servers,
            catalog: ModelProfile::catalog(),
            rng_params: StdRng::seed_from_u64(cfg.seed),
            rng_sites: StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15),
            rng_class: StdRng::seed_from_u64(cfg.seed ^ 0xC2B2_AE3D_27D4_EB4F),
            arrival: 0,
            produced: 0,
        }
    }

    /// Tasks produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Tasks left before the stream ends (`cfg.num_tasks` total).
    pub fn remaining(&self) -> u64 {
        self.cfg.num_tasks as u64 - self.produced
    }

    fn next_task(&mut self) -> AiTask {
        let cfg = &self.cfg;
        // Global site: uniform choice.
        let global_site = self.servers[self.rng_sites.random_range(0..self.servers.len())];
        // Local sites: sample without replacement, excluding the global.
        let mut pool: Vec<NodeId> = self
            .servers
            .iter()
            .copied()
            .filter(|s| *s != global_site)
            .collect();
        let mut local_sites = Vec::with_capacity(cfg.locals_per_task);
        for _ in 0..cfg.locals_per_task {
            let idx = self.rng_sites.random_range(0..pool.len());
            local_sites.push(pool.swap_remove(idx));
        }
        local_sites.sort();

        let mut data_utility = BTreeMap::new();
        for s in &local_sites {
            data_utility.insert(*s, self.rng_sites.random_range(0.05..1.0));
        }

        let model_idx = cfg.model_mix[self.rng_params.random_range(0..cfg.model_mix.len())];
        let model = self.catalog[model_idx].clone();
        let iterations = self
            .rng_params
            .random_range(cfg.iterations.0..=cfg.iterations.1);
        let comm_budget_ms = self
            .rng_params
            .random_range(cfg.comm_budget_ms.0..=cfg.comm_budget_ms.1);
        let u: f64 = self.rng_params.random_range(f64::EPSILON..1.0);
        self.arrival += cfg
            .arrival_process
            .gap_ns(u, cfg.mean_interarrival_ns, self.arrival);

        let id = TaskId(self.produced);
        self.produced += 1;
        AiTask {
            id,
            model,
            global_site,
            local_sites,
            data_utility,
            iterations,
            comm_budget_ms,
            arrival_ns: self.arrival,
            class: draw_class(cfg.class_mix, &mut self.rng_class),
        }
    }
}

impl Iterator for WorkloadStream {
    type Item = AiTask;

    fn next(&mut self) -> Option<AiTask> {
        if self.produced >= self.cfg.num_tasks as u64 {
            return None;
        }
        Some(self.next_task())
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining() as usize;
        (rem, Some(rem))
    }
}

/// Generate a deterministic workload over the topology's servers.
///
/// Every task gets a distinct global site and `locals_per_task` distinct
/// local sites (wrapping around the server list if needed — a server may
/// host local models of several tasks, like the dockerised testbed).
///
/// Materialises the whole [`WorkloadStream`]; use the stream directly when
/// tasks should be pulled one arrival at a time.
///
/// # Panics
/// Panics if the topology has fewer than `locals_per_task + 1` servers or
/// `model_mix` indexes outside the catalog.
pub fn generate_workload(topo: &Topology, cfg: &WorkloadConfig) -> Vec<AiTask> {
    WorkloadStream::new(topo, cfg).collect()
}

/// Shape parameters for DAG-structured jobs ([`JobStream`]).
#[derive(Debug, Clone, PartialEq)]
pub struct DagConfig {
    /// Jobs the stream yields before ending.
    pub num_jobs: usize,
    /// Inclusive range of stages per job.
    pub stages: (u32, u32),
    /// Inclusive range of per-edge data-item sizes, Gbit.
    pub transfer_gbit: (f64, f64),
    /// Percent chance (0–100) that a non-root stage gets a second
    /// in-edge, turning chains into fan-in/fan-out diamonds.
    pub fanin_pct: u32,
}

impl Default for DagConfig {
    fn default() -> Self {
        DagConfig {
            num_jobs: 16,
            stages: (3, 6),
            transfer_gbit: (0.5, 4.0),
            fanin_pct: 30,
        }
    }
}

/// A lazy, deterministic stream of stage-DAG jobs ([`AiJob`]s).
///
/// Layered on [`WorkloadStream`] exactly the way the class stream was
/// layered on the site/parameter streams (PR 6): all DAG-*shape* draws —
/// stage counts, wiring, stage kinds, data-item sizes — come from a
/// **fourth** seeded RNG stream, while every stage's embedded [`AiTask`]
/// is pulled from the inner stream untouched. Consequence: the monolithic
/// task sequence for a given seed is byte-identical whether tasks are
/// consumed directly or through jobs, and changing only the DAG shape
/// parameters never moves a task's placement, model or arrival.
#[derive(Debug, Clone)]
pub struct JobStream {
    stream: WorkloadStream,
    dag: DagConfig,
    rng_dag: StdRng,
    produced: u64,
}

impl JobStream {
    /// Start a job stream over the topology's servers. `cfg.seed` feeds
    /// the fourth (DAG-shape) stream through its own salt.
    pub fn new(topo: &Topology, cfg: &WorkloadConfig, dag: DagConfig) -> Self {
        JobStream {
            stream: WorkloadStream::new(topo, cfg),
            rng_dag: StdRng::seed_from_u64(cfg.seed ^ 0xBF58_476D_1CE4_E5B9),
            dag,
            produced: 0,
        }
    }

    /// Jobs produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    fn next_job(&mut self) -> AiJob {
        // Shape draws first, all from the DAG stream: stage count, then
        // per-stage (kind, primary predecessor, item size, optional
        // fan-in edge) in stage order.
        let n = self
            .rng_dag
            .random_range(self.dag.stages.0..=self.dag.stages.1)
            .max(1) as usize;
        let (lo, hi) = self.dag.transfer_gbit;
        let mut kinds = vec![StageKind::Compute; n];
        let mut edges: Vec<DataEdge> = Vec::new();
        for (i, kind) in kinds.iter_mut().enumerate().skip(1) {
            *kind = match self.rng_dag.random_range(0..3u32) {
                0 => StageKind::Compute,
                1 => StageKind::AllReduce,
                _ => StageKind::PipelineTransfer,
            };
            let pred = self.rng_dag.random_range(0..i) as u32;
            let gbit = self.rng_dag.random_range(lo..=hi);
            edges.push(DataEdge {
                from: pred,
                to: i as u32,
                gbit,
            });
            if i >= 2 && self.rng_dag.random_range(0..100u32) < self.dag.fanin_pct {
                let extra = self.rng_dag.random_range(0..i) as u32;
                let gbit = self.rng_dag.random_range(lo..=hi);
                if extra != pred {
                    edges.push(DataEdge {
                        from: extra,
                        to: i as u32,
                        gbit,
                    });
                }
            }
        }
        if n >= 2 {
            // Jobs end on a synchronisation phase.
            kinds[n - 1] = StageKind::AllReduce;
        }

        // Stage tasks second, pulled from the inner stream with its own
        // three RNGs — draws identical to plain task generation.
        let stages: Vec<Stage> = (0..n as u32)
            .map(|id| Stage {
                id,
                kind: kinds[id as usize],
                task: self.stream.next_task(),
            })
            .collect();
        let arrival_ns = stages[0].task.arrival_ns;
        let class = stages[0].task.class;
        let id = JobId(self.produced);
        self.produced += 1;
        let job = AiJob {
            id,
            stages,
            edges,
            arrival_ns,
            class,
        };
        debug_assert!(job.validate().is_ok(), "generated job must validate");
        job
    }
}

impl Iterator for JobStream {
    type Item = AiJob;

    fn next(&mut self) -> Option<AiJob> {
        if self.produced >= self.dag.num_jobs as u64 {
            return None;
        }
        Some(self.next_job())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_topo::builders;

    fn topo() -> Topology {
        builders::metro(&builders::MetroParams::default())
    }

    #[test]
    fn generates_requested_count() {
        let tasks = generate_workload(&topo(), &WorkloadConfig::default());
        assert_eq!(tasks.len(), 30);
    }

    #[test]
    fn every_task_validates() {
        let tasks = generate_workload(&topo(), &WorkloadConfig::default());
        for t in &tasks {
            t.validate().unwrap();
            assert_eq!(t.num_locals(), 5);
        }
    }

    #[test]
    fn sites_are_servers() {
        let topo = topo();
        let servers: std::collections::BTreeSet<_> = topo.servers().into_iter().collect();
        for t in generate_workload(&topo, &WorkloadConfig::default()) {
            assert!(servers.contains(&t.global_site));
            for s in &t.local_sites {
                assert!(servers.contains(s));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t1 = generate_workload(&topo(), &WorkloadConfig::default());
        let t2 = generate_workload(&topo(), &WorkloadConfig::default());
        assert_eq!(t1, t2);
    }

    #[test]
    fn seeds_change_the_draw() {
        let a = generate_workload(&topo(), &WorkloadConfig::default());
        let b = generate_workload(
            &topo(),
            &WorkloadConfig {
                seed: 1,
                ..WorkloadConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let tasks = generate_workload(&topo(), &WorkloadConfig::default());
        for w in tasks.windows(2) {
            assert!(w[1].arrival_ns > w[0].arrival_ns);
        }
    }

    #[test]
    fn seeded_constructors_pin_the_draw() {
        assert_eq!(WorkloadConfig::seeded(11).seed, 11);
        let cfg = WorkloadConfig::seeded_scenario(42, 8, 5);
        assert_eq!((cfg.seed, cfg.num_tasks, cfg.locals_per_task), (42, 8, 5));
        // Same seed, same tasks; different seed, different tasks.
        let t = topo();
        let a = generate_workload(&t, &WorkloadConfig::seeded_scenario(42, 8, 5));
        let b = generate_workload(&t, &WorkloadConfig::seeded_scenario(42, 8, 5));
        let c = generate_workload(&t, &WorkloadConfig::seeded_scenario(43, 8, 5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_sweep_sets_local_count() {
        let cfg = WorkloadConfig::paper_sweep(15, 7);
        let topo = builders::metro(&builders::MetroParams {
            servers_per_router: 4,
            ..builders::MetroParams::default()
        });
        let tasks = generate_workload(&topo, &cfg);
        assert!(tasks.iter().all(|t| t.num_locals() == 15));
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_servers_panics() {
        let small = builders::star(3, 1.0, 100.0); // 3 servers
        let cfg = WorkloadConfig {
            locals_per_task: 5,
            ..WorkloadConfig::default()
        };
        let _ = generate_workload(&small, &cfg);
    }

    #[test]
    fn default_mix_is_all_standard() {
        for t in generate_workload(&topo(), &WorkloadConfig::default()) {
            assert_eq!(t.class, ServiceClass::Standard);
        }
    }

    #[test]
    fn class_mix_changes_only_the_class() {
        let t = topo();
        let plain = generate_workload(&t, &WorkloadConfig::seeded(7));
        let mixed = generate_workload(
            &t,
            &WorkloadConfig {
                class_mix: PRODUCTION_CLASS_MIX,
                ..WorkloadConfig::seeded(7)
            },
        );
        assert_eq!(plain.len(), mixed.len());
        for (a, b) in plain.iter().zip(&mixed) {
            let mut b_as_standard = b.clone();
            b_as_standard.class = ServiceClass::Standard;
            assert_eq!(*a, b_as_standard);
        }
        // The production mix actually draws every class at 30 tasks.
        for class in ServiceClass::ALL {
            assert!(
                mixed.iter().any(|t| t.class == class),
                "mix never drew {class}"
            );
        }
    }

    #[test]
    fn tenant_scenario_uses_production_mix() {
        let cfg = WorkloadConfig::tenant_scenario(5, 16, 4);
        assert_eq!(cfg.class_mix, PRODUCTION_CLASS_MIX);
        assert_eq!((cfg.num_tasks, cfg.locals_per_task, cfg.seed), (16, 4, 5));
    }

    #[test]
    fn arrival_process_changes_only_arrivals() {
        let t = topo();
        let base = generate_workload(&t, &WorkloadConfig::seeded(3));
        for process in [
            ArrivalProcess::Pareto { alpha: 1.5 },
            ArrivalProcess::Diurnal {
                period_ns: 20_000_000,
                trough_to_peak: 0.25,
            },
        ] {
            let shaped = generate_workload(
                &t,
                &WorkloadConfig {
                    arrival_process: process,
                    ..WorkloadConfig::seeded(3)
                },
            );
            for (a, b) in base.iter().zip(&shaped) {
                let mut b_aligned = b.clone();
                b_aligned.arrival_ns = a.arrival_ns;
                assert_eq!(*a, b_aligned, "{process:?} perturbed non-arrival fields");
            }
            // Strictly increasing (the clamp guarantees a ≥1 ns gap).
            for w in shaped.windows(2) {
                assert!(w[1].arrival_ns > w[0].arrival_ns);
            }
        }
    }

    #[test]
    fn pareto_arrivals_are_heavy_tailed() {
        // Same mean, heavier tail: the max gap under Pareto(1.5) should
        // dominate the max exponential gap over a long run.
        let gaps = |process: ArrivalProcess| -> Vec<u64> {
            let tasks = generate_workload(
                &topo(),
                &WorkloadConfig {
                    num_tasks: 400,
                    arrival_process: process,
                    ..WorkloadConfig::seeded(11)
                },
            );
            tasks
                .windows(2)
                .map(|w| w[1].arrival_ns - w[0].arrival_ns)
                .collect()
        };
        let poisson = gaps(ArrivalProcess::Poisson);
        let pareto = gaps(ArrivalProcess::Pareto { alpha: 1.5 });
        assert!(pareto.iter().max() > poisson.iter().max());
        // Bursty: the median Pareto gap sits well below the mean.
        let mut sorted = pareto.clone();
        sorted.sort_unstable();
        assert!(sorted[sorted.len() / 2] < 2_000_000);
    }

    #[test]
    fn diurnal_rate_actually_swings() {
        // Within one period the peak half should pack more arrivals than
        // the trough half.
        let period = 40_000_000u64;
        let tasks = generate_workload(
            &topo(),
            &WorkloadConfig {
                num_tasks: 600,
                arrival_process: ArrivalProcess::Diurnal {
                    period_ns: period,
                    trough_to_peak: 0.2,
                },
                ..WorkloadConfig::seeded(13)
            },
        );
        let (mut peak, mut trough) = (0u32, 0u32);
        for t in &tasks {
            if (t.arrival_ns % period) < period / 2 {
                peak += 1;
            } else {
                trough += 1;
            }
        }
        assert!(
            peak > trough + trough / 2,
            "peak half {peak} not clearly above trough half {trough}"
        );
    }

    #[test]
    fn stream_matches_batch_generation() {
        let t = topo();
        let cfg = WorkloadConfig::tenant_scenario(9, 40, 4);
        let batch = generate_workload(&t, &cfg);
        let streamed: Vec<AiTask> = WorkloadStream::new(&t, &cfg).collect();
        assert_eq!(batch, streamed);
        // Pulling one at a time (the event-driven pattern) is the same draw.
        let mut stream = WorkloadStream::new(&t, &cfg);
        for (i, expect) in batch.iter().enumerate() {
            assert_eq!(stream.remaining(), (40 - i) as u64);
            assert_eq!(stream.next().as_ref(), Some(expect));
        }
        assert_eq!(stream.next(), None);
        assert_eq!(stream.produced(), 40);
    }

    #[test]
    fn stream_size_hint_is_exact() {
        let t = topo();
        let cfg = WorkloadConfig::seeded_scenario(4, 12, 3);
        let mut stream = WorkloadStream::new(&t, &cfg);
        assert_eq!(stream.size_hint(), (12, Some(12)));
        stream.next();
        assert_eq!(stream.size_hint(), (11, Some(11)));
    }

    #[test]
    fn utilities_are_in_range() {
        for t in generate_workload(&topo(), &WorkloadConfig::default()) {
            for u in t.data_utility.values() {
                assert!(*u > 0.0 && *u < 1.0);
            }
            assert_eq!(t.data_utility.len(), t.local_sites.len());
        }
    }
}
