//! Seeded workload generation: "We generate 30 AI tasks to evaluate the
//! proposed scheduling policy".

use crate::task::{AiTask, TaskId};
use flexsched_compute::ModelProfile;
use flexsched_topo::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::BTreeMap;

/// Workload generation parameters.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Number of tasks (the paper uses 30).
    pub num_tasks: usize,
    /// Local models per task. The evaluation sweeps this from a few up
    /// to 15.
    pub locals_per_task: usize,
    /// Indices into [`ModelProfile::catalog`] to draw models from.
    pub model_mix: Vec<usize>,
    /// Iterations per task, inclusive range.
    pub iterations: (u32, u32),
    /// Communication budget per procedure, ms, inclusive range.
    pub comm_budget_ms: (f64, f64),
    /// Mean inter-arrival gap between tasks, ns (exponential).
    pub mean_interarrival_ns: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            num_tasks: 30,
            locals_per_task: 5,
            // Small-to-mid models: the testbed trains edge-scale CV models
            // (lenet / mobilenet); larger profiles are exercised by the
            // transport and ablation scenarios.
            model_mix: vec![0, 1, 1],
            iterations: (3, 10),
            comm_budget_ms: (10.0, 40.0),
            mean_interarrival_ns: 2_000_000, // 2 ms
            seed: 2024,
        }
    }
}

impl WorkloadConfig {
    /// The Figure-3 sweep point with `n` local models per task: 30 tasks,
    /// paper defaults otherwise.
    pub fn paper_sweep(n: usize, seed: u64) -> Self {
        WorkloadConfig {
            locals_per_task: n,
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// Default parameters with an explicit seed — the constructor tests
    /// should use, so every random draw is pinned at the test site and a
    /// failure replays from the seed alone instead of depending on the
    /// crate-wide default staying what it was.
    pub fn seeded(seed: u64) -> Self {
        WorkloadConfig {
            seed,
            ..WorkloadConfig::default()
        }
    }

    /// [`seeded`](WorkloadConfig::seeded) with the task and local-model
    /// counts overridden — the shape orchestrator scenario tests draw.
    pub fn seeded_scenario(seed: u64, num_tasks: usize, locals_per_task: usize) -> Self {
        WorkloadConfig {
            num_tasks,
            locals_per_task,
            seed,
            ..WorkloadConfig::default()
        }
    }
}

/// Generate a deterministic workload over the topology's servers.
///
/// Every task gets a distinct global site and `locals_per_task` distinct
/// local sites (wrapping around the server list if needed — a server may
/// host local models of several tasks, like the dockerised testbed).
///
/// # Panics
/// Panics if the topology has fewer than `locals_per_task + 1` servers or
/// `model_mix` indexes outside the catalog.
pub fn generate_workload(topo: &Topology, cfg: &WorkloadConfig) -> Vec<AiTask> {
    let servers = topo.servers();
    assert!(
        servers.len() > cfg.locals_per_task,
        "need at least {} servers, topology has {}",
        cfg.locals_per_task + 1,
        servers.len()
    );
    let catalog = ModelProfile::catalog();
    // Two independent streams: task parameters (model, iterations, budget,
    // arrival) are drawn separately from site choices, so sweeping
    // `locals_per_task` changes only the sites — the Figure-3 sweep points
    // are paired experiments over the same 30 task parameterisations.
    let mut rng_params = StdRng::seed_from_u64(cfg.seed);
    let mut rng_sites = StdRng::seed_from_u64(cfg.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut tasks = Vec::with_capacity(cfg.num_tasks);
    let mut arrival = 0u64;

    for i in 0..cfg.num_tasks {
        // Global site: uniform choice.
        let global_site = servers[rng_sites.random_range(0..servers.len())];
        // Local sites: sample without replacement, excluding the global.
        let mut pool: Vec<NodeId> = servers
            .iter()
            .copied()
            .filter(|s| *s != global_site)
            .collect();
        let mut local_sites = Vec::with_capacity(cfg.locals_per_task);
        for _ in 0..cfg.locals_per_task {
            let idx = rng_sites.random_range(0..pool.len());
            local_sites.push(pool.swap_remove(idx));
        }
        local_sites.sort();

        let mut data_utility = BTreeMap::new();
        for s in &local_sites {
            data_utility.insert(*s, rng_sites.random_range(0.05..1.0));
        }

        let model_idx = cfg.model_mix[rng_params.random_range(0..cfg.model_mix.len())];
        let model = catalog[model_idx].clone();
        let iterations = rng_params.random_range(cfg.iterations.0..=cfg.iterations.1);
        let comm_budget_ms = rng_params.random_range(cfg.comm_budget_ms.0..=cfg.comm_budget_ms.1);
        let u: f64 = rng_params.random_range(f64::EPSILON..1.0);
        arrival += (-u.ln() * cfg.mean_interarrival_ns as f64).round() as u64;

        tasks.push(AiTask {
            id: TaskId(i as u64),
            model,
            global_site,
            local_sites,
            data_utility,
            iterations,
            comm_budget_ms,
            arrival_ns: arrival,
        });
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexsched_topo::builders;

    fn topo() -> Topology {
        builders::metro(&builders::MetroParams::default())
    }

    #[test]
    fn generates_requested_count() {
        let tasks = generate_workload(&topo(), &WorkloadConfig::default());
        assert_eq!(tasks.len(), 30);
    }

    #[test]
    fn every_task_validates() {
        let tasks = generate_workload(&topo(), &WorkloadConfig::default());
        for t in &tasks {
            t.validate().unwrap();
            assert_eq!(t.num_locals(), 5);
        }
    }

    #[test]
    fn sites_are_servers() {
        let topo = topo();
        let servers: std::collections::BTreeSet<_> = topo.servers().into_iter().collect();
        for t in generate_workload(&topo, &WorkloadConfig::default()) {
            assert!(servers.contains(&t.global_site));
            for s in &t.local_sites {
                assert!(servers.contains(s));
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let t1 = generate_workload(&topo(), &WorkloadConfig::default());
        let t2 = generate_workload(&topo(), &WorkloadConfig::default());
        assert_eq!(t1, t2);
    }

    #[test]
    fn seeds_change_the_draw() {
        let a = generate_workload(&topo(), &WorkloadConfig::default());
        let b = generate_workload(
            &topo(),
            &WorkloadConfig {
                seed: 1,
                ..WorkloadConfig::default()
            },
        );
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let tasks = generate_workload(&topo(), &WorkloadConfig::default());
        for w in tasks.windows(2) {
            assert!(w[1].arrival_ns > w[0].arrival_ns);
        }
    }

    #[test]
    fn seeded_constructors_pin_the_draw() {
        assert_eq!(WorkloadConfig::seeded(11).seed, 11);
        let cfg = WorkloadConfig::seeded_scenario(42, 8, 5);
        assert_eq!((cfg.seed, cfg.num_tasks, cfg.locals_per_task), (42, 8, 5));
        // Same seed, same tasks; different seed, different tasks.
        let t = topo();
        let a = generate_workload(&t, &WorkloadConfig::seeded_scenario(42, 8, 5));
        let b = generate_workload(&t, &WorkloadConfig::seeded_scenario(42, 8, 5));
        let c = generate_workload(&t, &WorkloadConfig::seeded_scenario(43, 8, 5));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_sweep_sets_local_count() {
        let cfg = WorkloadConfig::paper_sweep(15, 7);
        let topo = builders::metro(&builders::MetroParams {
            servers_per_router: 4,
            ..builders::MetroParams::default()
        });
        let tasks = generate_workload(&topo, &cfg);
        assert!(tasks.iter().all(|t| t.num_locals() == 15));
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn too_few_servers_panics() {
        let small = builders::star(3, 1.0, 100.0); // 3 servers
        let cfg = WorkloadConfig {
            locals_per_task: 5,
            ..WorkloadConfig::default()
        };
        let _ = generate_workload(&small, &cfg);
    }

    #[test]
    fn utilities_are_in_range() {
        for t in generate_workload(&topo(), &WorkloadConfig::default()) {
            for u in t.data_utility.values() {
                assert!(*u > 0.0 && *u < 1.0);
            }
            assert_eq!(t.data_utility.len(), t.local_sites.len());
        }
    }
}
