//! # flexsched-task — distributed AI task model and workload generation
//!
//! A *distributed AI task* in the poster's sense: one global model plus `N`
//! local models that synchronise every iteration via a broadcast (G → Li)
//! and an upload (Li → G) procedure. This crate defines:
//!
//! * [`AiTask`] — the task record the AI task manager stores in the
//!   database: model profile, sites, iteration count, bandwidth demand and
//!   per-site data-utility scores (for selection strategies),
//! * [`TaskReport`] — the measured outcome (training/communication latency
//!   breakdown and consumed bandwidth) that feeds Figures 3a/3b,
//! * [`generator`] — the seeded workload generator reproducing the paper's
//!   evaluation ("we generate 30 AI tasks") across a sweep of local-model
//!   counts.

pub mod dag;
pub mod generator;
pub mod report;
pub mod task;

pub use dag::{AiJob, DataEdge, JobId, Stage, StageKind};
pub use generator::{
    generate_workload, ArrivalProcess, ClassMix, DagConfig, JobStream, WorkloadConfig,
    WorkloadStream, PRODUCTION_CLASS_MIX,
};
pub use report::TaskReport;
pub use task::{AiTask, ServiceClass, TaskId};
