//! Integration tests spanning every crate: the paper's headline claims at
//! reduced scale, plus determinism and failure injection.

use flexsched::orchestrator::{Testbed, TestbedConfig};
use flexsched::sched::{FixedSpff, FlexibleMst, ReschedulePolicy, SelectionStrategy};
use flexsched::simnet::{traffic::TrafficConfig, SimTime};
use flexsched::task::WorkloadConfig;

fn cfg(num_tasks: usize, n_locals: usize) -> TestbedConfig {
    TestbedConfig {
        workload: WorkloadConfig {
            num_tasks,
            locals_per_task: n_locals,
            mean_interarrival_ns: 150_000_000,
            ..WorkloadConfig::default()
        },
        ..TestbedConfig::default()
    }
}

/// The Figure-3a claim: the flexible scheduler finishes iterations faster
/// at high local-model counts, and the gap grows with the count.
#[test]
fn figure_3a_shape_holds() {
    let run = |n, flexible: bool| {
        let sched: Box<dyn flexsched::sched::Scheduler> = if flexible {
            Box::new(FlexibleMst::paper())
        } else {
            Box::new(FixedSpff)
        };
        Testbed::new(cfg(12, n), sched)
            .run()
            .unwrap()
            .mean_iteration_ms
    };
    let (fx3, fl3) = (run(3, false), run(3, true));
    let (fx15, fl15) = (run(15, false), run(15, true));
    assert!(
        fl15 < fx15,
        "flexible must win at 15 locals: {fl15} !< {fx15}"
    );
    let gap3 = fx3 / fl3;
    let gap15 = fx15 / fl15;
    assert!(
        gap15 > gap3,
        "gap must widen with locals: {gap3:.3} -> {gap15:.3}"
    );
}

/// The Figure-3b claim: fixed bandwidth grows ~linearly, flexible slower,
/// and flexible uses less at every sweep point.
#[test]
fn figure_3b_shape_holds() {
    let run = |n, flexible: bool| {
        let sched: Box<dyn flexsched::sched::Scheduler> = if flexible {
            Box::new(FlexibleMst::paper())
        } else {
            Box::new(FixedSpff)
        };
        Testbed::new(cfg(12, n), sched)
            .run()
            .unwrap()
            .sum_task_bandwidth_gbps
    };
    let mut prev_gap = 0.0;
    for n in [3, 9, 15] {
        let fixed = run(n, false);
        let flex = run(n, true);
        assert!(flex < fixed, "n={n}: flexible {flex} !< fixed {fixed}");
        let gap = fixed - flex;
        assert!(
            gap > prev_gap,
            "absolute saving must grow with locals: {prev_gap} -> {gap}"
        );
        prev_gap = gap;
    }
}

/// Determinism: identical seeds give bit-identical runs, different seeds
/// give different workloads.
#[test]
fn runs_are_deterministic_per_seed() {
    let a = Testbed::new(cfg(8, 6), Box::new(FlexibleMst::paper()))
        .run()
        .unwrap();
    let b = Testbed::new(cfg(8, 6), Box::new(FlexibleMst::paper()))
        .run()
        .unwrap();
    assert_eq!(a.reports, b.reports);
    assert_eq!(a.events, b.events);

    let mut other = cfg(8, 6);
    other.workload.seed = 999;
    let c = Testbed::new(other, Box::new(FlexibleMst::paper()))
        .run()
        .unwrap();
    assert_ne!(a.reports, c.reports);
}

/// Failure injection: link outages with rescheduling enabled still complete
/// the full workload, and migrations only help.
#[test]
fn fault_injection_with_rescheduling_completes() {
    let mut faulty = cfg(8, 6);
    faulty.fault_count = 8;
    faulty.mean_repair = SimTime::from_ms(100);
    faulty.horizon = SimTime::from_secs(20);
    faulty.max_retries = 2000;
    faulty.reschedule = Some(ReschedulePolicy::default());
    let s = Testbed::new(faulty, Box::new(FlexibleMst::paper()))
        .run()
        .unwrap();
    assert_eq!(s.reports.len(), 8, "all tasks must finish despite outages");
}

/// Background traffic, selection and both schedulers coexist in one run.
#[test]
fn full_stack_scenario_with_selection_and_traffic() {
    let mut c = cfg(10, 10);
    c.traffic = Some(TrafficConfig {
        mean_rate_gbps: 4.0,
        ..TrafficConfig::default()
    });
    c.selection = SelectionStrategy::TopKUtility(0.6);
    c.max_retries = 2000;
    let s = Testbed::new(c, Box::new(FlexibleMst::paper()))
        .run()
        .unwrap();
    assert_eq!(s.reports.len(), 10);
    for r in &s.reports {
        assert!(
            r.locals_scheduled <= 6,
            "selection must cap locals at 60%: {}",
            r.locals_scheduled
        );
        assert!(r.locals_scheduled >= 1);
    }
}

/// Reservations never leak: after any run the database reports zero
/// reserved bandwidth.
#[test]
fn no_reservation_leaks_across_policies() {
    for flexible in [false, true] {
        let sched: Box<dyn flexsched::sched::Scheduler> = if flexible {
            Box::new(FlexibleMst::paper())
        } else {
            Box::new(FixedSpff)
        };
        let tb = Testbed::new(cfg(6, 8), sched);
        let db = tb.database().clone();
        tb.run().unwrap();
        assert!(
            db.total_reserved_gbps().abs() < 1e-6,
            "leaked reservations (flexible={flexible})"
        );
    }
}
