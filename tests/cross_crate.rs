//! Cross-crate integration: scheduler output driving the optical layer,
//! the SDN controller, the control-plane codec and the threaded bus.

use flexsched::compute::{ClusterManager, ModelProfile, ServerSpec};
use flexsched::optical::{GroomingManager, OpticalState, WavelengthPolicy};
use flexsched::orchestrator::{ControlMessage, ControllerHandle, Database, SdnController};
use flexsched::sched::{FlexibleMst, NetworkSnapshot, RoutingPlan, Scheduler};
use flexsched::simnet::NetworkState;
use flexsched::task::{AiTask, TaskId};
use flexsched::topo::builders;
use std::sync::Arc;

fn rig() -> (Arc<flexsched::topo::Topology>, NetworkState, AiTask) {
    let topo = Arc::new(builders::metro(&builders::MetroParams::default()));
    let state = NetworkState::new(Arc::clone(&topo));
    let servers = topo.servers();
    let task = AiTask {
        id: TaskId(0),
        model: ModelProfile::mobilenet(),
        global_site: servers[0],
        local_sites: servers[1..9].to_vec(),
        data_utility: Default::default(),
        iterations: 3,
        comm_budget_ms: 10.0,
        arrival_ns: 0,
        class: Default::default(),
    };
    (topo, state, task)
}

/// A flexible schedule's tree chains groom onto wavelengths, sharing
/// lightpaths between broadcast and upload where endpoints coincide.
#[test]
fn schedule_grooms_onto_wavelengths() {
    let (topo, state, task) = rig();
    let schedule = {
        let snap = NetworkSnapshot::capture(&state);
        FlexibleMst::paper()
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap()
            .schedule
    };
    let mut optical = OpticalState::new(Arc::clone(&topo));
    let mut groom = GroomingManager::new();
    let mut demands = Vec::new();
    for plan in [&schedule.broadcast, &schedule.upload] {
        if let RoutingPlan::Tree { tree, .. } = plan {
            for chain in tree.chains() {
                demands.push(
                    groom
                        .groom(
                            &mut optical,
                            &chain,
                            schedule.demand_gbps,
                            WavelengthPolicy::FirstFit,
                        )
                        .expect("idle WDM metro fits one task"),
                );
            }
        }
    }
    assert!(optical.lightpath_count() > 0);
    assert!(
        groom.reuse_hits() > 0,
        "upload must reuse the broadcast tree's lightpaths"
    );
    for d in demands {
        groom.release(&mut optical, d).unwrap();
    }
    assert_eq!(optical.lightpath_count(), 0);
}

/// SDN rule compilation matches the schedule's own accounting, and rules
/// round-trip through the binary codec.
#[test]
fn flow_rules_round_trip_through_codec() {
    let (topo, mut state, task) = rig();
    let schedule = {
        let snap = NetworkSnapshot::capture(&state);
        FlexibleMst::paper()
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap()
            .schedule
    };
    let rules = SdnController::compile(&schedule, &state).unwrap();
    let total: f64 = rules.iter().map(|r| r.rate_gbps).sum();
    assert!((total - schedule.total_bandwidth_gbps(&topo).unwrap()).abs() < 1e-6);

    let msg = ControlMessage::InstallRules(rules.clone());
    let mut encoded = msg.encode();
    let decoded = ControlMessage::decode(&mut encoded).unwrap();
    assert_eq!(msg, decoded);

    // And they install/remove cleanly.
    let mut sdn = SdnController::new();
    sdn.install(&schedule, &mut state).unwrap();
    sdn.remove_task(schedule.task, &mut state).unwrap();
    assert!(state.total_reserved_gbps().abs() < 1e-9);
}

/// The threaded controller applies schedule rules sent over the bus.
#[test]
fn bus_installs_schedule_rules() {
    let (topo, state, task) = rig();
    let schedule = {
        let snap = NetworkSnapshot::capture(&state);
        FlexibleMst::paper()
            .propose_once(&task, &task.local_sites, &snap)
            .unwrap()
            .schedule
    };
    let rules = SdnController::compile(&schedule, &state).unwrap();
    let db = Database::new(
        state,
        OpticalState::new(Arc::clone(&topo)),
        ClusterManager::from_topology(&topo, ServerSpec::default()),
    );
    let ctl = ControllerHandle::spawn(db.clone());
    ctl.send(&ControlMessage::InstallRules(rules)).unwrap();
    assert!(
        (db.total_reserved_gbps() - schedule.total_bandwidth_gbps(&topo).unwrap()).abs() < 1e-6
    );
    let processed = ctl.shutdown();
    assert!(processed >= 1);
}

/// Soft failures shrink the flexible scheduler's options but it still
/// schedules around them.
#[test]
fn soft_failures_are_routed_around() {
    use flexsched::optical::softfail::{apply, SoftFailure};
    let (topo, state, task) = rig();
    let mut optical = OpticalState::new(Arc::clone(&topo));
    // Impair most wavelengths of the first core ring span.
    let span = topo
        .find_link(flexsched::topo::NodeId(0), flexsched::topo::NodeId(1))
        .unwrap();
    apply(
        &mut optical,
        SoftFailure {
            link: span,
            severity: 7,
        },
    )
    .unwrap();
    let snap = NetworkSnapshot::capture(&state).with_optical(&optical);
    // One wavelength still free -> scheduling must still succeed.
    let s = FlexibleMst::paper()
        .propose_once(&task, &task.local_sites, &snap)
        .unwrap()
        .schedule;
    assert!(s.total_bandwidth_gbps(&topo).unwrap() > 0.0);
}
