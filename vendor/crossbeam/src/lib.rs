//! `crossbeam` stand-in providing the bounded-channel subset the
//! orchestrator's control bus uses, backed by `std::sync::mpsc`.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned when the receiving side is gone.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    /// Error returned when every sender is gone and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Cloneable sending half of a bounded channel.
    #[derive(Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Block until the message is enqueued (or the receiver is gone).
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Block until a message arrives (or every sender is gone).
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// Create a bounded channel of the given capacity.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn round_trip_and_disconnect() {
            let (tx, rx) = bounded(4);
            tx.send(1).unwrap();
            tx.clone().send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
