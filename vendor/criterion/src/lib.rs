//! Mini benchmark harness, API-compatible with the subset of `criterion`
//! this workspace uses (the real crate is unavailable offline).
//!
//! It measures honestly — calibrated batch sizes, warmup, wall-clock
//! samples, median/mean reporting — but performs no statistical regression
//! analysis. Results print to stdout and, when the `FLEXSCHED_BENCH_JSON`
//! environment variable names a file, are also appended as a JSON array so
//! scripts can snapshot performance (see `scripts/bench_snapshot.sh`).
//!
//! Setting `FLEXSCHED_BENCH_QUICK=1` switches to smoke mode: 3 samples and
//! a small calibration target, so CI can execute every bench body quickly
//! to catch bit-rot without paying for statistically meaningful timings.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark group name ("" outside groups).
    pub group: String,
    /// Benchmark id within the group.
    pub name: String,
    /// Mean wall-clock time per iteration, nanoseconds.
    pub mean_ns: f64,
    /// Median wall-clock time per iteration, nanoseconds.
    pub median_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
}

static RESULTS: Mutex<Vec<BenchResult>> = Mutex::new(Vec::new());

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Compose `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }
}

/// Things accepted as a benchmark label (`&str` or [`BenchmarkId`]).
pub trait IntoBenchLabel {
    /// The rendered label.
    fn into_label(self) -> String;
}

impl IntoBenchLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchLabel for String {
    fn into_label(self) -> String {
        self
    }
}

/// Passed to the measured closure; [`Bencher::iter`] runs the payload.
pub struct Bencher<'a> {
    samples: usize,
    result: &'a mut Option<(f64, f64, usize)>,
}

impl Bencher<'_> {
    /// Measure `routine`: calibrate a batch size, warm up, then time
    /// `samples` batches and record mean/median per-iteration time.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: grow the batch until one batch takes >= 2 ms (cap the
        // calibration effort for very slow routines). Quick mode shrinks
        // the target so CI smoke runs execute every body cheaply.
        let calibration_target = if quick_mode() {
            Duration::from_micros(100)
        } else {
            Duration::from_millis(2)
        };
        let mut batch: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= calibration_target || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        // Timed samples.
        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            per_iter.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        let median = per_iter[per_iter.len() / 2];
        *self.result = Some((mean, median, per_iter.len()));
    }
}

fn run_one(group: &str, name: String, samples: usize, f: impl FnOnce(&mut Bencher<'_>)) {
    let mut result = None;
    let mut b = Bencher {
        samples,
        result: &mut result,
    };
    f(&mut b);
    let (mean_ns, median_ns, n) = result.expect("benchmark closure must call Bencher::iter");
    let full = if group.is_empty() {
        name.clone()
    } else {
        format!("{group}/{name}")
    };
    println!("bench {full:<60} median {median_ns:>14.1} ns/iter  (mean {mean_ns:.1}, {n} samples)");
    RESULTS.lock().expect("results lock").push(BenchResult {
        group: group.to_string(),
        name,
        mean_ns,
        median_ns,
        samples: n,
    });
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchLabel,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        run_one(&self.name, id.into_label(), self.samples, f);
        self
    }

    /// Run one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher<'_>, &I),
    ) -> &mut Self {
        run_one(&self.name, id.into_label(), self.samples, |b| f(b, input));
        self
    }

    /// End the group (kept for API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The harness entry point; one per `criterion_group!` function call.
#[derive(Default)]
pub struct Criterion {
    samples: usize,
}

/// Whether `FLEXSCHED_BENCH_QUICK` requests CI smoke mode.
fn quick_mode() -> bool {
    std::env::var("FLEXSCHED_BENCH_QUICK").is_ok_and(|v| v != "0")
}

impl Criterion {
    fn effective_samples(&self) -> usize {
        if quick_mode() {
            return 3;
        }
        if self.samples == 0 {
            20
        } else {
            self.samples
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.effective_samples();
        BenchmarkGroup {
            name: name.into(),
            samples,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl IntoBenchLabel,
        f: impl FnOnce(&mut Bencher<'_>),
    ) -> &mut Self {
        let samples = self.effective_samples();
        run_one("", id.into_label(), samples, f);
        self
    }
}

/// Record a scalar *metric* (not a timing) into the results set — e.g. a
/// blocking probability measured alongside a throughput bench. The value is
/// stored in the `median_ns`/`mean_ns` slots with `samples = 0` marking it
/// as a metric, and travels through `results_snapshot` and the JSON dump
/// like any bench point; the point's name must carry the unit.
pub fn record_metric(group: &str, name: impl Into<String>, value: f64) {
    let name = name.into();
    println!("metric {group}/{name} = {value}");
    RESULTS.lock().expect("results lock").push(BenchResult {
        group: group.to_string(),
        name,
        mean_ns: value,
        median_ns: value,
        samples: 0,
    });
}

/// Snapshot of everything measured so far in this process.
pub fn results_snapshot() -> Vec<BenchResult> {
    RESULTS.lock().expect("results lock").clone()
}

/// If `FLEXSCHED_BENCH_JSON` is set, write all results there as JSON.
/// Called automatically by `criterion_main!`.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("FLEXSCHED_BENCH_JSON") else {
        return;
    };
    let results = results_snapshot();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Metric entries (samples == 0) carry arbitrary scalars — e.g.
        // probabilities — so they keep full precision; timings stay at a
        // tenth of a nanosecond.
        let (median, mean) = if r.samples == 0 {
            (format!("{:.6}", r.median_ns), format!("{:.6}", r.mean_ns))
        } else {
            (format!("{:.1}", r.median_ns), format!("{:.1}", r.mean_ns))
        };
        out.push_str(&format!(
            "  {{\"group\": \"{}\", \"bench\": \"{}\", \"median_ns\": {median}, \"mean_ns\": {mean}, \"samples\": {}}}{}\n",
            r.group, r.name, r.samples, sep,
        ));
    }
    out.push_str("]\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion stub: cannot write {path}: {e}");
    } else {
        println!("bench results written to {path}");
    }
}

/// Bundle benchmark functions under one group-runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `fn main()` running the given group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_results() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
        let r = results_snapshot();
        let rec = r.iter().find(|r| r.group == "stub").expect("recorded");
        assert!(rec.mean_ns > 0.0);
        assert_eq!(rec.samples, 3);
    }
}
