//! Marker-trait stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types to keep
//! them serialisation-ready, but never links a data-format crate (the build
//! environment is offline). This stub keeps the derive syntax compiling:
//! the traits are empty markers with blanket implementations, and the
//! derive macros (re-exported from the vendored `serde_derive`) expand to
//! nothing. Swapping the real serde back in is a one-line Cargo change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<'de, T> Deserialize<'de> for T {}
