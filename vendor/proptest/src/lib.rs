//! Mini property-testing harness, API-compatible with the subset of
//! `proptest` this workspace uses (the real crate is unavailable offline).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`], [`prop_oneof!`],
//! * strategies: half-open numeric ranges, [`arbitrary::any`], [`strategy::Just`],
//!   tuples (up to 6), [`strategy::Strategy::prop_map`], [`strategy::Strategy::boxed`],
//!   [`collection::vec`].
//!
//! Unlike the real proptest there is no shrinking: a failing case panics
//! with the formatted assertion message plus the generating seed, which —
//! because generation is deterministic per (test name, case index) — is
//! enough to reproduce.

pub mod test_runner {
    /// Run-time configuration for one `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// Apply the `PROPTEST_CASES` environment override, if set. Unlike
        /// upstream proptest (where the env var only changes the default),
        /// this stub lets the variable override explicit `with_cases`
        /// configs too: the nightly CI profile uses it to deep-run every
        /// property in the workspace regardless of its PR-loop budget.
        pub fn env_override(mut self) -> Self {
            if let Ok(v) = std::env::var("PROPTEST_CASES") {
                if let Ok(cases) = v.parse::<u32>() {
                    self.cases = cases.max(1);
                }
            }
            self
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it is re-drawn.
        Reject(String),
        /// An assertion failed; the test panics.
        Fail(String),
    }

    /// Deterministic per-test generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test identifier (typically `stringify!(test_name)`).
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h | 1 }
        }

        /// Next raw 64-bit output.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform index in `[0, n)`.
        pub fn index(&mut self, n: usize) -> usize {
            assert!(n > 0, "index over empty range");
            (self.next_u64() % n as u64) as usize
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. The real proptest separates strategies from value
    /// trees (for shrinking); this mini version samples directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erase for heterogeneous composition (`prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe sampling, used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.0.sample_dyn(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from the alternatives.
        pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!alternatives.is_empty(), "prop_oneof! needs alternatives");
            Union(alternatives)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.index(self.0.len());
            self.0[i].sample(rng)
        }
    }

    /// Numeric types samplable from a half-open range strategy.
    pub trait RangeSample: Copy {
        /// Uniform draw from `[lo, hi)`.
        fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self;
    }

    macro_rules! impl_range_sample_int {
        ($($t:ty),*) => {$(
            impl RangeSample for $t {
                fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
                    assert!(lo < hi, "empty strategy range");
                    let span = (hi as u128).wrapping_sub(lo as u128);
                    lo + ((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_range_sample_int!(u8, u16, u32, u64, usize);

    impl RangeSample for f64 {
        fn draw(rng: &mut TestRng, lo: Self, hi: Self) -> Self {
            assert!(lo < hi, "empty strategy range");
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl<T: RangeSample> Strategy for Range<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::draw(rng, self.start, self.end)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draw a full-range value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            // Finite values only: full-range bit patterns would mostly be
            // astronomically large or NaN, which no caller here wants.
            (rng.unit_f64() - 0.5) * 2e9
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy: length uniform in `len`, elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty vec length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.start + rng.index(self.len.end - self.len.start);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical `bool` strategy (`proptest::bool::ANY`).
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Each accepted case draws fresh inputs from the
/// given strategies; `prop_assume!` rejections are re-drawn (bounded).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig =
                    <$crate::test_runner::ProptestConfig>::env_override($cfg);
                let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
                let strat = ($($strat,)*);
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    #[allow(unused_variables)]
                    let ($($pat,)*) = $crate::strategy::Strategy::sample(&strat, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(20).max(1_000),
                                "proptest {}: too many prop_assume! rejections",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name), accepted, msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)*);
    }};
}

/// Reject (re-draw) the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3u32..9, f in 0.0f64..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6, "len {}", v.len());
            for e in v {
                prop_assert!(e < 4);
            }
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![Just(1u32), (5u32..7).prop_map(|v| v * 10)]) {
            prop_assert!(x == 1 || x == 50 || x == 60, "unexpected {x}");
        }

        #[test]
        fn assume_rejects_and_redraws(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_per_name() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
