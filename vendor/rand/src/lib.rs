//! Deterministic PRNG stand-in for `rand`.
//!
//! Provides exactly the subset the workspace uses: a seedable 64-bit
//! generator (`rngs::StdRng`, `SeedableRng::seed_from_u64`) and the
//! [`RngExt::random_range`] sampling helper over half-open ranges of the
//! numeric types that appear in builders, workload generators and fault
//! injectors. The generator is SplitMix64-seeded xorshift*, which is plenty
//! for simulation workloads and — crucially for this repo — fully
//! deterministic across platforms, matching the repo-wide "explicit seeds,
//! reproducible runs" contract.

use std::ops::{Range, RangeInclusive};

/// Seedable generator constructor (API-compatible subset of rand's trait).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::SeedableRng;

    /// The workspace's standard generator: xorshift64* over a
    /// SplitMix64-scrambled seed.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Next raw 64-bit output.
        #[inline]
        pub fn next_u64(&mut self) -> u64 {
            // xorshift64*
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 scramble so nearby seeds diverge; never zero.
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng { state: z | 1 }
        }
    }
}

/// Types [`RngExt::random_range`] can sample uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)`.
    fn sample_half_open(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_half_open(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "random_range: empty range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                let r = ((rng.next_u64() as u128) % span) as $t;
                lo + r
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_half_open(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "random_range: empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
}

/// Inclusive upper bounds for [`RangeInclusive`] sampling.
pub trait SampleUniformInclusive: SampleUniform {
    /// Uniform sample in `[lo, hi]`.
    fn sample_inclusive(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleUniformInclusive for $t {
            #[inline]
            fn sample_inclusive(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "random_range: empty inclusive range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                let r = ((rng.next_u64() as u128) % span) as $t;
                lo + r
            }
        }
    )*};
}

impl_sample_inclusive_int!(u8, u16, u32, u64, usize);

impl SampleUniformInclusive for f64 {
    #[inline]
    fn sample_inclusive(rng: &mut rngs::StdRng, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "random_range: empty inclusive range");
        let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + unit * (hi - lo)
    }
}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniformInclusive> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_from(self, rng: &mut rngs::StdRng) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Sampling helpers over [`rngs::StdRng`].
pub trait RngExt {
    /// Uniform sample from a half-open (`lo..hi`) or inclusive (`lo..=hi`)
    /// range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;

    /// Bernoulli draw with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    #[inline]
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random_range(0.0..1.0) < p
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let f = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.random_range(0usize..5);
            assert!(u < 5);
        }
    }

    #[test]
    fn f64_mean_is_plausible() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }
}
