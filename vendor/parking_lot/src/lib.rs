//! `parking_lot` stand-in backed by `std::sync`.
//!
//! Same non-poisoning `read()`/`write()` API shape the workspace relies on;
//! a poisoned std lock (a panic while held) propagates the panic rather
//! than returning a `Result`, which matches parking_lot's behaviour closely
//! enough for the orchestrator's usage.

use std::sync::{RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutual-exclusion lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquire the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }
}
