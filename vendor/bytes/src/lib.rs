//! `bytes` stand-in: the big-endian cursor/builder subset the control-plane
//! codec uses ([`Bytes`], [`BytesMut`], [`Buf`], [`BufMut`]).
//!
//! [`Bytes`] is a cheaply-cloneable view (`Arc<[u8]>` + start/end) whose
//! `get_*` methods consume from the front, exactly like the real crate's
//! `Buf` cursor semantics. [`BytesMut`] is a growable builder that freezes
//! into [`Bytes`].

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, cheaply-cloneable byte buffer with cursor-style reads.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// View over a static slice (copies into shared storage).
    pub fn from_static(s: &'static [u8]) -> Self {
        Bytes::from_vec(s.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }

    /// Remaining length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sub-view of the remaining bytes (shares storage).
    ///
    /// # Panics
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

/// Cursor-style reads from the front of a buffer (big-endian).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Consume `n` bytes and return them.
    fn take(&mut self, n: usize) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(self.take(4));
        u32::from_be_bytes(raw)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(self.take(8));
        u64::from_be_bytes(raw)
    }

    /// Read a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        self.take_front(n)
    }
}

/// Growable byte builder with big-endian writes.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the builder is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from_vec(self.buf)
    }
}

/// Big-endian writes onto the back of a buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, s: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_all_widths() {
        let mut b = BytesMut::with_capacity(32);
        b.put_u8(7);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_f64(1.5);
        let mut frozen = b.freeze();
        assert_eq!(frozen.remaining(), 1 + 4 + 8 + 8);
        assert_eq!(frozen.get_u8(), 7);
        assert_eq!(frozen.get_u32(), 0xDEAD_BEEF);
        assert_eq!(frozen.get_u64(), 42);
        assert_eq!(frozen.get_f64(), 1.5);
        assert_eq!(frozen.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage_and_bounds() {
        let mut b = BytesMut::new();
        b.extend_from_slice(&[1, 2, 3, 4]);
        let frozen = b.freeze();
        let s = frozen.slice(..2);
        assert_eq!(&*s, &[1, 2]);
        assert_eq!(&*frozen.slice(2..), &[3, 4]);
    }

    #[test]
    #[should_panic]
    fn underflow_panics() {
        let mut b = BytesMut::new();
        b.put_u8(1);
        let mut f = b.freeze();
        let _ = f.get_u32();
    }
}
