//! No-op stand-in for `serde_derive`.
//!
//! The build environment has no network access, so the real serde cannot be
//! fetched. The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! marker (no data-format crate is linked), and the vendored `serde` stub
//! provides blanket implementations of its marker traits — so these derives
//! can expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
